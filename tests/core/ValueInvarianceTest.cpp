//===- tests/core/ValueInvarianceTest.cpp ---------------------------------===//

#include "core/ValueInvariance.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::core;

namespace {

ReactiveConfig fastConfig() {
  ReactiveConfig C;
  C.MonitorPeriod = 1000;
  C.WaitPeriod = 10000;
  C.OptLatency = 0;
  return C;
}

} // namespace

TEST(ValueInvarianceTest, DeploysInvariantLoad) {
  ValueInvarianceController C(fastConfig());
  uint64_t InstRet = 0;
  for (int I = 0; I < 1000; ++I)
    C.onLoad(0, 32, InstRet += 5);
  ASSERT_TRUE(C.isDeployed(0));
  EXPECT_EQ(C.deployedValue(0), 32u);
  const auto V = C.onLoad(0, 32, InstRet += 5);
  EXPECT_TRUE(V.Speculated);
  EXPECT_TRUE(V.Correct);
}

TEST(ValueInvarianceTest, NeverDeploysVaryingLoad) {
  ValueInvarianceController C(fastConfig());
  uint64_t InstRet = 0;
  Rng R(3);
  for (int I = 0; I < 20000; ++I)
    C.onLoad(0, R.nextBelow(7), InstRet += 5);
  EXPECT_FALSE(C.isDeployed(0));
  EXPECT_EQ(C.stats().DeployRequests, 0u);
}

TEST(ValueInvarianceTest, EvictsWhenConstantChanges) {
  // "x.d is frequently 32" ... until the program phase changes and it is
  // frequently 48: the compiled-in constant must be ripped out and the
  // new one learned.
  ValueInvarianceController C(fastConfig());
  uint64_t InstRet = 0;
  for (int I = 0; I < 1000; ++I)
    C.onLoad(0, 32, InstRet += 5);
  ASSERT_TRUE(C.isDeployed(0));

  // The constant changes: misspeculations accumulate, eviction fires.
  for (int I = 0; I < 200; ++I)
    C.onLoad(0, 48, InstRet += 5);
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_FALSE(C.isDeployed(0));

  // After re-monitoring, the NEW constant is deployed.
  for (int I = 0; I < 1200; ++I)
    C.onLoad(0, 48, InstRet += 5);
  ASSERT_TRUE(C.isDeployed(0));
  EXPECT_EQ(C.deployedValue(0), 48u);
}

TEST(ValueInvarianceTest, CandidateFrozenWhileDeployed) {
  ValueInvarianceController C(fastConfig());
  uint64_t InstRet = 0;
  for (int I = 0; I < 1000; ++I)
    C.onLoad(0, 7, InstRet += 5);
  ASSERT_TRUE(C.isDeployed(0));
  // A burst of different values must not silently rebind the compiled-in
  // constant (it must misspeculate instead).
  for (int I = 0; I < 100; ++I) {
    const auto V = C.onLoad(0, 9, InstRet += 5);
    EXPECT_TRUE(V.Speculated);
    EXPECT_FALSE(V.Correct);
    EXPECT_EQ(V.SpeculatedValue, 7u);
  }
  EXPECT_EQ(C.deployedValue(0), 7u);
}

TEST(ValueInvarianceTest, NearInvariantLoadTolerated) {
  // 99.9%-invariant: deployed, with the 0.1% counted as misspeculations
  // and no eviction (hysteresis).
  ValueInvarianceController C(fastConfig());
  uint64_t InstRet = 0;
  Rng R(11);
  uint64_t Wrong = 0;
  for (int I = 0; I < 50000; ++I) {
    const uint64_t Value = R.nextBool(0.999) ? 5 : R.nextBelow(100) + 10;
    const auto V = C.onLoad(0, Value, InstRet += 5);
    Wrong += V.Speculated && !V.Correct;
  }
  EXPECT_TRUE(C.isDeployed(0));
  EXPECT_EQ(C.stats().Evictions, 0u);
  EXPECT_GT(Wrong, 0u);
  EXPECT_LT(C.stats().incorrectRate(), 0.002);
}

TEST(ValueInvarianceTest, IndependentSites) {
  ValueInvarianceController C(fastConfig());
  uint64_t InstRet = 0;
  Rng R(5);
  for (int I = 0; I < 2000; ++I) {
    C.onLoad(0, 1, InstRet += 5);
    C.onLoad(1, R.nextBelow(16), InstRet += 5);
  }
  EXPECT_TRUE(C.isDeployed(0));
  EXPECT_FALSE(C.isDeployed(1));
}

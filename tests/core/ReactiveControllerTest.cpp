//===- tests/core/ReactiveControllerTest.cpp ------------------------------===//
//
// FSM-level tests of the paper's reactive control model: every arc of
// Fig. 4(b), the Table 2 hysteresis, latency modeling, the oscillation
// cap, and the sampling variants.
//
//===----------------------------------------------------------------------===//

#include "core/ReactiveController.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::core;

namespace {

/// Feeds \p Count outcomes of one site, advancing instret by 5 per branch.
/// Returns the number of misspeculated executions reported.
uint64_t feed(ReactiveController &C, SiteId Site, bool Taken, uint64_t Count,
              uint64_t &InstRet) {
  uint64_t Wrong = 0;
  for (uint64_t I = 0; I < Count; ++I) {
    InstRet += 5;
    const BranchVerdict V = C.onBranch(Site, Taken, InstRet);
    Wrong += V.Speculated && !V.Correct;
  }
  return Wrong;
}

ReactiveConfig fastConfig() {
  ReactiveConfig C;
  C.MonitorPeriod = 1000;
  C.WaitPeriod = 10000;
  C.OptLatency = 0;
  return C;
}

} // namespace

TEST(ReactiveControllerTest, MonitorClassifiesBiased) {
  ReactiveController C(fastConfig());
  uint64_t InstRet = 0;
  feed(C, 0, true, 999, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Monitor);
  EXPECT_FALSE(C.isDeployed(0));
  feed(C, 0, true, 1, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Biased);
  EXPECT_TRUE(C.isDeployed(0)); // zero latency
  EXPECT_TRUE(C.deployedDirection(0));
  EXPECT_EQ(C.stats().DeployRequests, 1u);
  EXPECT_EQ(C.stats().everBiasedCount(), 1u);
}

TEST(ReactiveControllerTest, MonitorClassifiesUnbiased) {
  ReactiveController C(fastConfig());
  uint64_t InstRet = 0;
  for (uint64_t I = 0; I < 1000; ++I) {
    InstRet += 5;
    C.onBranch(0, I % 2 == 0, InstRet);
  }
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Unbiased);
  EXPECT_FALSE(C.isDeployed(0));
  EXPECT_EQ(C.stats().DeployRequests, 0u);
}

TEST(ReactiveControllerTest, SelectionThresholdRespected) {
  // 99.0% bias must NOT pass the 99.5% selection threshold.
  ReactiveConfig Cfg = fastConfig();
  Cfg.MonitorPeriod = 10000;
  ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  for (uint64_t I = 0; I < 10000; ++I) {
    InstRet += 5;
    C.onBranch(0, I % 100 != 0, InstRet); // exactly 99.0%
  }
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Unbiased);

  // 99.8% passes.
  ReactiveController D(Cfg);
  InstRet = 0;
  for (uint64_t I = 0; I < 10000; ++I) {
    InstRet += 5;
    D.onBranch(0, I % 500 != 0, InstRet); // 99.8%
  }
  EXPECT_EQ(D.fsmState(0), ReactiveController::FsmState::Biased);
}

TEST(ReactiveControllerTest, OptimizationLatencyDefersDeployment) {
  ReactiveConfig Cfg = fastConfig();
  Cfg.OptLatency = 100000;
  ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet); // classified at InstRet = 5000
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Biased);
  EXPECT_FALSE(C.isDeployed(0));
  // Not deployed until 100k instructions later.
  feed(C, 0, true, 1000, InstRet); // InstRet = 10000
  EXPECT_FALSE(C.isDeployed(0));
  while (InstRet < 5000 + 100000)
    feed(C, 0, true, 1, InstRet);
  feed(C, 0, true, 1, InstRet);
  EXPECT_TRUE(C.isDeployed(0));
  // Speculation accounting starts only at deployment: the execution that
  // crossed the ready point plus the one afterwards.
  EXPECT_EQ(C.stats().CorrectSpecs, 2u);
}

TEST(ReactiveControllerTest, EvictionAfterSaturation) {
  ReactiveController C(fastConfig());
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet);
  ASSERT_TRUE(C.isDeployed(0));
  // Pure misspeculation: +50 each, saturates at 10,000 -> 200 misspecs.
  const uint64_t Wrong = feed(C, 0, false, 200, InstRet);
  EXPECT_EQ(Wrong, 200u);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Monitor);
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_EQ(C.stats().RevokeRequests, 1u);
  EXPECT_EQ(C.stats().evictedSiteCount(), 1u);
  // Zero latency: revoke applied immediately.
  EXPECT_FALSE(C.isDeployed(0));
}

TEST(ReactiveControllerTest, HysteresisToleratesBursts) {
  // A burst of 150 misspeculations (7500 counter) followed by enough
  // correct runs must NOT evict (paper Sec. 3.1 item 2).
  ReactiveController C(fastConfig());
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet);
  ASSERT_TRUE(C.isDeployed(0));
  feed(C, 0, false, 150, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Biased);
  feed(C, 0, true, 8000, InstRet); // drain the counter
  feed(C, 0, false, 150, InstRet); // second burst
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Biased);
  EXPECT_EQ(C.stats().Evictions, 0u);
}

TEST(ReactiveControllerTest, NoEvictionConfigNeverEvicts) {
  ReactiveController C(ReactiveConfig::noEviction(), "open-loop");
  ReactiveConfig Fast = fastConfig();
  Fast.EnableEviction = false;
  ReactiveController D(Fast);
  uint64_t InstRet = 0;
  feed(D, 0, true, 1000, InstRet);
  ASSERT_TRUE(D.isDeployed(0));
  const uint64_t Wrong = feed(D, 0, false, 5000, InstRet);
  EXPECT_EQ(Wrong, 5000u);
  EXPECT_EQ(D.fsmState(0), ReactiveController::FsmState::Biased);
  EXPECT_EQ(D.stats().Evictions, 0u);
  EXPECT_TRUE(D.isDeployed(0));
}

TEST(ReactiveControllerTest, RevisitReturnsToMonitor) {
  ReactiveConfig Cfg = fastConfig();
  ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  for (uint64_t I = 0; I < 1000; ++I) {
    InstRet += 5;
    C.onBranch(0, I % 2 == 0, InstRet);
  }
  ASSERT_EQ(C.fsmState(0), ReactiveController::FsmState::Unbiased);
  // After the wait period the site is re-monitored; if it became biased,
  // it is selected this time.
  feed(C, 0, true, Cfg.WaitPeriod, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Monitor);
  EXPECT_EQ(C.stats().Revisits, 1u);
  feed(C, 0, true, Cfg.MonitorPeriod, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Biased);
}

TEST(ReactiveControllerTest, NoRevisitConfigStaysUnbiased) {
  ReactiveConfig Cfg = fastConfig();
  Cfg.EnableRevisit = false;
  ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  for (uint64_t I = 0; I < 1000; ++I) {
    InstRet += 5;
    C.onBranch(0, I % 2 == 0, InstRet);
  }
  ASSERT_EQ(C.fsmState(0), ReactiveController::FsmState::Unbiased);
  feed(C, 0, true, 10 * Cfg.WaitPeriod, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Unbiased);
  EXPECT_EQ(C.stats().Revisits, 0u);
}

TEST(ReactiveControllerTest, OscillationCapBlacklists) {
  ReactiveConfig Cfg = fastConfig();
  Cfg.WaitPeriod = 1000;
  Cfg.OscillationLimit = 3;
  ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  // Oscillate: a clean biased monitor window (deploy), then exactly the
  // 200 misspeculations that saturate the +50 counter (evict), repeated.
  for (int Cycle = 0; Cycle < 6; ++Cycle) {
    feed(C, 0, true, Cfg.MonitorPeriod, InstRet);
    feed(C, 0, false, 200, InstRet);
    // Drain the partial monitor window the eviction tail started.
    feed(C, 0, true, Cfg.MonitorPeriod, InstRet);
  }
  EXPECT_TRUE(C.isOscillationCapped(0));
  EXPECT_EQ(C.stats().DeployRequests, 3u);
  EXPECT_GE(C.stats().SuppressedRequests, 1u);
  EXPECT_FALSE(C.isDeployed(0));
}

TEST(ReactiveControllerTest, MonitorSamplingStillClassifies) {
  ReactiveConfig Cfg = fastConfig();
  Cfg.MonitorSampleRate = 8;
  Cfg.MonitorPeriod = 8000; // 1000 samples
  ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  feed(C, 0, true, 8000, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Biased);
}

TEST(ReactiveControllerTest, EvictionBySampling) {
  ReactiveConfig Cfg = fastConfig();
  Cfg.EvictBySampling = true;
  Cfg.EvictSampleWindow = 1000;
  Cfg.EvictSampleCount = 100;
  Cfg.EvictSampleBias = 0.98;
  ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet);
  ASSERT_TRUE(C.isDeployed(0));
  // Healthy windows don't evict.
  feed(C, 0, true, 3000, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Biased);
  // A sick window does: the sampled prefix of the next window is all
  // wrong.
  feed(C, 0, false, 100, InstRet);
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Monitor);
  EXPECT_EQ(C.stats().Evictions, 1u);
}

TEST(ReactiveControllerTest, ExternalSinkReceivesRequests) {
  class Sink : public OptRequestSink {
  public:
    std::vector<OptRequest> Requests;
    void onRequest(const OptRequest &R) override { Requests.push_back(R); }
  };

  Sink S;
  ReactiveController C(fastConfig());
  C.setRequestSink(&S);
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet);
  ASSERT_EQ(S.Requests.size(), 1u);
  EXPECT_EQ(S.Requests[0].Kind, OptRequestKind::Deploy);
  EXPECT_TRUE(S.Requests[0].Direction);
  EXPECT_TRUE(C.hasPendingRequest(0));
  EXPECT_FALSE(C.isDeployed(0));
  C.completeRequest(0);
  EXPECT_TRUE(C.isDeployed(0));
  EXPECT_FALSE(C.hasPendingRequest(0));

  // Drive an eviction; the revoke must surface too.
  feed(C, 0, false, 200, InstRet);
  ASSERT_EQ(S.Requests.size(), 2u);
  EXPECT_EQ(S.Requests[1].Kind, OptRequestKind::Revoke);
  EXPECT_TRUE(C.isDeployed(0)); // still deployed until completion
  C.completeRequest(0);
  EXPECT_FALSE(C.isDeployed(0));
}

TEST(ReactiveControllerTest, MisspecsCountedDuringRevokeLatency) {
  // Paper Sec. 3.1: after eviction, speculations continue to be counted
  // until the repaired code deploys.
  ReactiveConfig Cfg = fastConfig();
  Cfg.OptLatency = 50000;
  ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet);
  while (!C.isDeployed(0))
    feed(C, 0, true, 1, InstRet);
  feed(C, 0, false, 200, InstRet); // evict (revoke pending)
  ASSERT_EQ(C.stats().Evictions, 1u);
  ASSERT_TRUE(C.isDeployed(0));
  const uint64_t Before = C.stats().IncorrectSpecs;
  feed(C, 0, false, 100, InstRet); // still old code: counted
  EXPECT_EQ(C.stats().IncorrectSpecs, Before + 100);
}

TEST(ReactiveControllerTest, TransitionRecordsCaptureReversal) {
  ReactiveController C(fastConfig());
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet);
  feed(C, 0, false, 200, InstRet); // evict
  feed(C, 0, false, 64, InstRet);  // transition vicinity: all reversed
  const auto &Trans = C.stats().Transitions;
  ASSERT_EQ(Trans.size(), 1u);
  EXPECT_EQ(Trans[0].Site, 0u);
  EXPECT_EQ(Trans[0].Observed, 64u);
  EXPECT_EQ(Trans[0].AgainstOriginal, 64u);
}

TEST(ReactiveControllerTest, PerSiteIndependence) {
  ReactiveController C(fastConfig());
  uint64_t InstRet = 0;
  // Interleave a biased and an unbiased site.
  for (uint64_t I = 0; I < 2000; ++I) {
    InstRet += 5;
    C.onBranch(0, true, InstRet);
    InstRet += 5;
    C.onBranch(1, I % 2 == 0, InstRet);
  }
  EXPECT_EQ(C.fsmState(0), ReactiveController::FsmState::Biased);
  EXPECT_EQ(C.fsmState(1), ReactiveController::FsmState::Unbiased);
  EXPECT_EQ(C.stats().touchedCount(), 2u);
  EXPECT_EQ(C.stats().everBiasedCount(), 1u);
}

TEST(ReactiveControllerTest, StatsConservation) {
  ReactiveController C(fastConfig());
  uint64_t InstRet = 0;
  feed(C, 0, true, 5000, InstRet);
  feed(C, 0, false, 100, InstRet);
  feed(C, 0, true, 1000, InstRet);
  const ControlStats &S = C.stats();
  EXPECT_EQ(S.Branches, 6100u);
  // Speculated executions = correct + incorrect <= branches.
  EXPECT_LE(S.CorrectSpecs + S.IncorrectSpecs, S.Branches);
  EXPECT_EQ(S.LastInstRet, InstRet);
}

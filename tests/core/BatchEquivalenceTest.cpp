//===- tests/core/BatchEquivalenceTest.cpp --------------------------------===//
//
// The batched pipeline's core contract: driving a run in chunks of any
// size produces results bit-identical to the per-event reference path.
// Exercised as a property over the full twelve-benchmark paper suite on
// both inputs, for the reactive controller and the static baselines, at
// the default chunk size and a deliberately odd one (so final partial
// chunks and chunk-boundary effects are covered), and through the engine
// at several worker counts.
//
// `ctest -R batch_equivalence` is the stable handle for this suite (see
// tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "core/StaticControllers.h"
#include "engine/ExperimentRunner.h"
#include "workload/SpecSuite.h"
#include "workload/TraceFile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

using namespace specctrl;
using namespace specctrl::core;
using namespace specctrl::engine;
using namespace specctrl::workload;

namespace {

/// Small enough that the 12-benchmark x 2-input sweep runs in seconds,
/// large enough that the reactive controller classifies, deploys, and
/// evicts (the stats being compared are not all-zero).
constexpr SuiteScale TestScale{3.0e3, 0.1};

/// The chunk sizes under test: the pipeline default and an odd size that
/// never divides the event count (so the final chunk is partial and chunk
/// boundaries land mid-phase).
constexpr size_t TestBatches[] = {workload::DefaultBatchEvents, 257};

ReactiveConfig scaledConfig(ReactiveConfig C) {
  C.MonitorPeriod = 100;
  C.WaitPeriod = 2000;
  C.OptLatency = 0;
  return C;
}

/// Runs (Spec, Input) under the scaled baseline reactive config with the
/// given chunk size and returns the final stats.
ControlStats runReactive(const WorkloadSpec &Spec, const InputConfig &Input,
                         size_t BatchEvents) {
  ReactiveController C(scaledConfig(ReactiveConfig::baseline()));
  runWorkload(C, Spec, Input, nullptr, BatchEvents);
  return C.stats();
}

profile::BranchProfile selfProfile(const WorkloadSpec &Spec,
                                   const InputConfig &Input) {
  profile::BranchProfile P(Spec.numSites());
  TraceGenerator Gen(Spec, Input);
  BranchEvent E;
  while (Gen.next(E))
    P.addOutcome(E.Site, E.Taken);
  return P;
}

ControlStats runStatic(const WorkloadSpec &Spec, const InputConfig &Input,
                       const profile::BranchProfile &Profile,
                       size_t BatchEvents) {
  StaticSelectionController C(Profile, 0.95);
  runWorkload(C, Spec, Input, nullptr, BatchEvents);
  return C.stats();
}

ExperimentPlan fullSuitePlan() {
  ExperimentPlan Plan;
  Plan.setBaseSeed(42);
  for (const BenchmarkProfile &P : suiteProfiles())
    Plan.addBenchmark(makeBenchmark(P, TestScale));
  Plan.addConfig("baseline", [](const CellContext &) {
    return std::make_unique<ReactiveController>(
        scaledConfig(ReactiveConfig::baseline()));
  });
  return Plan;
}

/// Serializes a report the way the bench harnesses do (one CSV row per
/// cell, every integer stat that feeds a paper table): byte-identical
/// strings across jobs/chunk settings is the user-visible equivalence.
std::string reportCsv(const RunReport &Report) {
  std::ostringstream OS;
  OS << "benchmark,input,config,seed,events,branches,correct,incorrect,"
        "deploys,revokes,suppressed,evictions,revisits,touched\n";
  for (const CellResult &Cell : Report.Cells) {
    const ControlStats &S = Cell.Stats;
    OS << Cell.Benchmark << ',' << Cell.Input << ',' << Cell.Config << ','
       << Cell.Seed << ',' << Cell.Events << ',' << S.Branches << ','
       << S.CorrectSpecs << ',' << S.IncorrectSpecs << ','
       << S.DeployRequests << ',' << S.RevokeRequests << ','
       << S.SuppressedRequests << ',' << S.Evictions << ',' << S.Revisits
       << ',' << S.touchedCount() << '\n';
  }
  return OS.str();
}

} // namespace

TEST(BatchEquivalenceTest, ReactiveSuiteMatchesPerEventOnBothInputs) {
  uint64_t NonTrivialRuns = 0;
  for (const BenchmarkProfile &P : suiteProfiles()) {
    const WorkloadSpec Spec = makeBenchmark(P, TestScale);
    for (const InputConfig &Input : {Spec.refInput(), Spec.trainInput()}) {
      const ControlStats Reference = runReactive(Spec, Input, 1);
      for (const size_t Batch : TestBatches)
        EXPECT_EQ(Reference, runReactive(Spec, Input, Batch))
            << Spec.Name << "/" << Input.Name << " batch=" << Batch;
      if (Reference.DeployRequests > 0)
        ++NonTrivialRuns;
    }
  }
  // The property must be exercising real controller activity.
  EXPECT_GT(NonTrivialRuns, 0u);
}

TEST(BatchEquivalenceTest, StaticSuiteMatchesPerEventOnBothInputs) {
  uint64_t SpeculatingRuns = 0;
  for (const BenchmarkProfile &P : suiteProfiles()) {
    const WorkloadSpec Spec = makeBenchmark(P, TestScale);
    for (const InputConfig &Input : {Spec.refInput(), Spec.trainInput()}) {
      const profile::BranchProfile Profile = selfProfile(Spec, Input);
      const ControlStats Reference = runStatic(Spec, Input, Profile, 1);
      for (const size_t Batch : TestBatches)
        EXPECT_EQ(Reference, runStatic(Spec, Input, Profile, Batch))
            << Spec.Name << "/" << Input.Name << " batch=" << Batch;
      if (Reference.CorrectSpecs > 0)
        ++SpeculatingRuns;
    }
  }
  EXPECT_GT(SpeculatingRuns, 0u);
}

TEST(BatchEquivalenceTest, GeneratorBatchesMatchPerEventStream) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  TraceGenerator PerEvent(Spec, Spec.refInput());
  TraceGenerator Batched(Spec, Spec.refInput());

  std::vector<BranchEvent> Chunk(257);
  BranchEvent Reference;
  uint64_t Count = 0;
  while (const size_t N = Batched.nextBatch(Chunk)) {
    for (size_t I = 0; I < N; ++I) {
      ASSERT_TRUE(PerEvent.next(Reference));
      ASSERT_EQ(Chunk[I], Reference) << "event " << Count;
      ++Count;
    }
  }
  EXPECT_FALSE(PerEvent.next(Reference));
  EXPECT_EQ(Count, Spec.RefEvents);
}

TEST(BatchEquivalenceTest, WriterV2BytesInvariantUnderChunking) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  std::vector<BranchEvent> All;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    BranchEvent E;
    while (Gen.next(E))
      All.push_back(E);
  }
  ASSERT_FALSE(All.empty());

  const auto record = [&](std::span<const size_t> ChunkSizes) {
    std::ostringstream OS;
    TraceWriterV2 Writer(OS, Spec.numSites(), All.size(), Spec.MinGap,
                         Spec.MaxGap);
    size_t Pos = 0, NextChunk = 0;
    while (Pos < All.size()) {
      const size_t Want = ChunkSizes[NextChunk++ % ChunkSizes.size()];
      const size_t N = std::min(Want, All.size() - Pos);
      EXPECT_TRUE(Writer.append({All.data() + Pos, N}));
      Pos += N;
    }
    EXPECT_TRUE(Writer.finish());
    return OS.str();
  };

  const size_t Ones[] = {1};
  const size_t Ragged[] = {1, 7, 333, 4096};
  const std::string A = record(Ones);
  const std::string B = record(Ragged);
  EXPECT_EQ(A, B);

  // ...and the one-shot generator-draining writer emits the same bytes.
  std::ostringstream OS;
  TraceGenerator Gen(Spec, Spec.refInput());
  ASSERT_EQ(writeTraceV2(OS, Gen), All.size());
  EXPECT_EQ(OS.str(), A);
}

TEST(BatchEquivalenceTest, EngineReportsIdenticalAcrossJobsAndChunks) {
  const ExperimentPlan Plan = fullSuitePlan();
  ASSERT_EQ(Plan.numCells(), 12u);

  RunOptions Reference;
  Reference.Jobs = 1;
  Reference.BatchEvents = 1; // per-event oracle
  const std::string ReferenceCsv = reportCsv(runPlan(Plan, Reference));

  for (const unsigned Jobs : {1u, 4u})
    for (const size_t Batch : TestBatches) {
      RunOptions Options;
      Options.Jobs = Jobs;
      Options.BatchEvents = Batch;
      const RunReport Report = runPlan(Plan, Options);
      EXPECT_EQ(Report.failedCells(), 0u);
      EXPECT_EQ(reportCsv(Report), ReferenceCsv)
          << "jobs=" << Jobs << " batch=" << Batch;
      // Chunk accounting: every cell dispatched ceil(events/batch) chunks.
      for (const CellResult &Cell : Report.Cells)
        EXPECT_EQ(Cell.Batches, (Cell.Events + Batch - 1) / Batch)
            << Cell.Benchmark;
    }
}

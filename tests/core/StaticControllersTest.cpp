//===- tests/core/StaticControllersTest.cpp -------------------------------===//

#include "core/StaticControllers.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::core;

TEST(StaticSelectionControllerTest, SelectsFromProfile) {
  profile::BranchProfile P(3);
  for (int I = 0; I < 1000; ++I)
    P.addOutcome(0, true); // 100% taken
  for (int I = 0; I < 1000; ++I)
    P.addOutcome(1, I % 2 == 0); // 50%
  for (int I = 0; I < 995; ++I)
    P.addOutcome(2, false);
  for (int I = 0; I < 5; ++I)
    P.addOutcome(2, true); // 99.5% not-taken

  StaticSelectionController C(P, 0.99);
  EXPECT_EQ(C.selectedCount(), 2u);
  EXPECT_TRUE(C.isDeployed(0));
  EXPECT_TRUE(C.deployedDirection(0));
  EXPECT_FALSE(C.isDeployed(1));
  EXPECT_TRUE(C.isDeployed(2));
  EXPECT_FALSE(C.deployedDirection(2));
}

TEST(StaticSelectionControllerTest, AccountsOutcomes) {
  profile::BranchProfile P(1);
  for (int I = 0; I < 100; ++I)
    P.addOutcome(0, true);
  StaticSelectionController C(P, 0.99);

  uint64_t InstRet = 0;
  for (int I = 0; I < 90; ++I)
    C.onBranch(0, true, InstRet += 5);
  for (int I = 0; I < 10; ++I)
    C.onBranch(0, false, InstRet += 5);
  C.onBranch(5, true, InstRet += 5); // unselected site

  const ControlStats &S = C.stats();
  EXPECT_EQ(S.Branches, 101u);
  EXPECT_EQ(S.CorrectSpecs, 90u);
  EXPECT_EQ(S.IncorrectSpecs, 10u);
  EXPECT_EQ(S.touchedCount(), 2u);
  EXPECT_EQ(S.everBiasedCount(), 1u);
}

TEST(StaticSelectionControllerTest, ExplicitSelection) {
  StaticSelectionController C({true, false}, {false, false}, "explicit");
  EXPECT_EQ(C.selectedCount(), 1u);
  const BranchVerdict V = C.onBranch(0, false, 5);
  EXPECT_TRUE(V.Speculated);
  EXPECT_TRUE(V.Correct);
  const BranchVerdict W = C.onBranch(1, false, 10);
  EXPECT_FALSE(W.Speculated);
}

TEST(StaticSelectionControllerTest, MinExecsFilter) {
  profile::BranchProfile P(1);
  for (int I = 0; I < 5; ++I)
    P.addOutcome(0, true);
  StaticSelectionController Lax(P, 0.99, 1);
  StaticSelectionController Strict(P, 0.99, 100);
  EXPECT_EQ(Lax.selectedCount(), 1u);
  EXPECT_EQ(Strict.selectedCount(), 0u);
}

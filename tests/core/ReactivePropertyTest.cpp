//===- tests/core/ReactivePropertyTest.cpp --------------------------------===//
//
// Property-style TEST_P sweeps over controller configurations and random
// behavior mixes: invariants that must hold for ANY parameter setting --
// the paper's core insensitivity claim (Sec. 3.3) in executable form.
//
//===----------------------------------------------------------------------===//

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "workload/TraceGenerator.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::core;
using namespace specctrl::workload;

namespace {

/// A compact mixed workload: biased, changing, periodic, and noisy sites.
WorkloadSpec mixedWorkload(uint64_t Seed) {
  WorkloadSpec Spec;
  Spec.Name = "mixed";
  Spec.Seed = Seed;
  Spec.RefEvents = 400000;
  Spec.NumPhases = 4;
  Spec.MinGap = 1;
  Spec.MaxGap = 8;

  auto Add = [&Spec](BehaviorSpec B, double W) {
    SiteSpec S;
    S.Behavior = B;
    S.Weight = W;
    Spec.Sites.push_back(S);
  };
  Add(BehaviorSpec::fixed(0.9995), 8);
  Add(BehaviorSpec::fixed(0.0005), 8);
  Add(BehaviorSpec::fixed(0.97), 4);
  Add(BehaviorSpec::fixed(0.5), 4);
  Add(BehaviorSpec::flipAt(0.9995, 0.02, 30000), 6);
  Add(BehaviorSpec::periodic(0.998, 0.4, 25000), 6);
  Add(BehaviorSpec::inductionFlip(32768), 6);
  Add(BehaviorSpec::randomWalk(0.5, 2000), 2);
  return Spec;
}

struct SweepParam {
  const char *Name;
  ReactiveConfig Config;
};

class ReactiveSweepTest : public ::testing::TestWithParam<SweepParam> {};

ReactiveConfig scaled(ReactiveConfig C) {
  // Shrink the paper's periods to this test workload's scale.
  C.MonitorPeriod = std::min<uint64_t>(C.MonitorPeriod, 2000);
  C.WaitPeriod = std::min<uint64_t>(C.WaitPeriod, 40000);
  C.OptLatency = std::min<uint64_t>(C.OptLatency, 50000);
  C.EvictSaturation = std::min<uint64_t>(C.EvictSaturation, 5000);
  // The 1k-of-10k sampling duty cycle assumes paper-length runs; shrink
  // it with everything else so detection latency stays proportionate.
  C.EvictSampleWindow = std::min<uint64_t>(C.EvictSampleWindow, 2000);
  C.EvictSampleCount = std::min<uint64_t>(C.EvictSampleCount, 200);
  return C;
}

} // namespace

TEST_P(ReactiveSweepTest, InvariantsHoldForAnyConfiguration) {
  const WorkloadSpec Spec = mixedWorkload(1234);
  ReactiveController C(GetParam().Config, GetParam().Name);
  workload::TraceGenerator Gen(Spec, Spec.refInput());
  const ControlStats &S = runTrace(C, Gen);

  // Conservation: every event observed once; speculated subset.
  EXPECT_EQ(S.Branches, Spec.RefEvents);
  EXPECT_LE(S.CorrectSpecs + S.IncorrectSpecs, S.Branches);

  // Requests balance: revokes never exceed deploys.
  EXPECT_LE(S.RevokeRequests, S.DeployRequests);
  EXPECT_EQ(S.Evictions, S.RevokeRequests);

  // Per-site accounting is consistent with aggregates.
  uint64_t SiteEvictSum = 0;
  for (uint32_t E : S.SiteEvictions)
    SiteEvictSum += E;
  EXPECT_EQ(SiteEvictSum, S.Evictions);
  EXPECT_LE(S.everBiasedCount(), S.touchedCount());
  EXPECT_LE(S.evictedSiteCount(), S.everBiasedCount());

  // Whatever the parameters, the strongly biased sites dominate benefit:
  // correct rate stays within sane bounds.
  EXPECT_GE(S.correctRate(), 0.0);
  EXPECT_LE(S.correctRate(), 1.0);
}

TEST_P(ReactiveSweepTest, EvictionBoundsMisspeculation) {
  // With eviction enabled, any config's misspeculation rate must be far
  // below the open-loop rate on the same changing workload.
  const WorkloadSpec Spec = mixedWorkload(777);

  ReactiveController WithArcs(GetParam().Config);
  workload::TraceGenerator GenA(Spec, Spec.refInput());
  const double Closed = runTrace(WithArcs, GenA).incorrectRate();

  ReactiveConfig Open = GetParam().Config;
  Open.EnableEviction = false;
  ReactiveController NoEvict(Open);
  workload::TraceGenerator GenB(Spec, Spec.refInput());
  const double OpenRate = runTrace(NoEvict, GenB).incorrectRate();

  if (!GetParam().Config.EnableEviction) {
    EXPECT_NEAR(Closed, OpenRate, 1e-9);
    return;
  }
  // The changing sites are ~20% of dynamic weight: open loop misspeculates
  // heavily on them; the closed loop must cut that by at least 5x.
  EXPECT_LT(Closed, OpenRate / 5.0 + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ReactiveSweepTest,
    ::testing::Values(
        SweepParam{"baseline", scaled(ReactiveConfig::baseline())},
        SweepParam{"no_eviction", scaled(ReactiveConfig::noEviction())},
        SweepParam{"no_revisit", scaled(ReactiveConfig::noRevisit())},
        SweepParam{"lower_evict",
                   scaled(ReactiveConfig::lowerEvictionThreshold())},
        SweepParam{"evict_sampling",
                   scaled(ReactiveConfig::evictionBySampling())},
        SweepParam{"monitor_sampling",
                   scaled(ReactiveConfig::monitorSampling())},
        SweepParam{"frequent_revisit",
                   scaled(ReactiveConfig::frequentRevisit())},
        SweepParam{"one_shot_1k", scaled(ReactiveConfig::oneShot(1000))}),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      return Info.param.Name;
    });

namespace {

class LatencySweepTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(LatencySweepTest, LatencyToleranceProperty) {
  // The paper's headline: latencies up to 10^6 instructions barely change
  // the outcome.  Verify correct-rate changes stay small across latencies.
  const WorkloadSpec Spec = mixedWorkload(42);

  ReactiveConfig Zero = scaled(ReactiveConfig::baseline());
  Zero.OptLatency = 0;
  ReactiveController Base(Zero);
  workload::TraceGenerator GenA(Spec, Spec.refInput());
  const double BaseCorrect = runTrace(Base, GenA).correctRate();

  ReactiveConfig Lat = Zero;
  Lat.OptLatency = GetParam();
  ReactiveController Delayed(Lat);
  workload::TraceGenerator GenB(Spec, Spec.refInput());
  const ControlStats &S = runTrace(Delayed, GenB);

  EXPECT_NEAR(S.correctRate(), BaseCorrect, 0.05)
      << "latency " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Latencies, LatencySweepTest,
                         ::testing::Values(0ull, 1000ull, 10000ull, 50000ull,
                                           100000ull));

namespace {

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SeedSweepTest, DeterministicAcrossRunsForAnySeed) {
  const WorkloadSpec Spec = mixedWorkload(GetParam());
  ReactiveConfig Cfg = scaled(ReactiveConfig::baseline());

  ReactiveController A(Cfg), B(Cfg);
  workload::TraceGenerator GenA(Spec, Spec.refInput());
  workload::TraceGenerator GenB(Spec, Spec.refInput());
  const ControlStats &SA = runTrace(A, GenA);
  const ControlStats &SB = runTrace(B, GenB);
  EXPECT_EQ(SA.CorrectSpecs, SB.CorrectSpecs);
  EXPECT_EQ(SA.IncorrectSpecs, SB.IncorrectSpecs);
  EXPECT_EQ(SA.Evictions, SB.Evictions);
  EXPECT_EQ(SA.DeployRequests, SB.DeployRequests);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1ull, 99ull, 2026ull, 31337ull));

//===- tests/core/DriverTest.cpp ------------------------------------------===//

#include "core/Driver.h"

#include "core/ReactiveController.h"
#include "support/RunConfig.h"
#include "workload/TraceFile.h"
#include "workload/TraceGenerator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <type_traits>
#include <vector>

using namespace specctrl;
using namespace specctrl::core;
using namespace specctrl::workload;

namespace {

WorkloadSpec twoSiteSpec() {
  WorkloadSpec Spec;
  Spec.Name = "drv";
  Spec.Seed = 5;
  Spec.RefEvents = 100000;
  Spec.NumPhases = 1;
  SiteSpec Biased;
  Biased.Behavior = BehaviorSpec::fixed(0.9995);
  Biased.Weight = 3.0;
  SiteSpec Noise;
  Noise.Behavior = BehaviorSpec::fixed(0.5);
  Noise.Weight = 1.0;
  Spec.Sites = {Biased, Noise};
  return Spec;
}

} // namespace

TEST(DriverTest, RunsWholeTrace) {
  const WorkloadSpec Spec = twoSiteSpec();
  ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;
  ReactiveController C(Cfg);
  const ControlStats &S = runWorkload(C, Spec, Spec.refInput());
  EXPECT_EQ(S.Branches, Spec.RefEvents);
  EXPECT_EQ(S.touchedCount(), 2u);
  // The biased site gets selected and speculated at ~75% of events.
  EXPECT_GT(S.correctRate(), 0.5);
  EXPECT_LT(S.incorrectRate(), 0.01);
}

TEST(DriverTest, HookSeesEveryEventAndVerdict) {
  const WorkloadSpec Spec = twoSiteSpec();
  ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;
  ReactiveController C(Cfg);

  uint64_t Events = 0, Speculated = 0;
  workload::TraceGenerator Gen(Spec, Spec.refInput());
  const ControlStats &S = runTrace(
      C, Gen, [&](const BranchEvent &E, const BranchVerdict &V) {
        ++Events;
        Speculated += V.Speculated;
        EXPECT_LT(E.Site, 2u);
      });
  EXPECT_EQ(Events, Spec.RefEvents);
  EXPECT_EQ(Speculated, S.CorrectSpecs + S.IncorrectSpecs);
}

TEST(DriverTest, PartiallyConsumedGeneratorFinishes) {
  const WorkloadSpec Spec = twoSiteSpec();
  workload::TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  for (int I = 0; I < 1000; ++I)
    ASSERT_TRUE(Gen.next(E));
  ReactiveController C(ReactiveConfig{});
  const ControlStats &S = runTrace(C, Gen);
  EXPECT_EQ(S.Branches, Spec.RefEvents - 1000);
}

// Observers are move-only by design: the engine hands each cell's
// observer around by unique_ptr, and an accidental copy would silently
// fork (and then drop) collected state.
static_assert(!std::is_copy_constructible_v<LambdaTraceObserver>);
static_assert(!std::is_copy_assignable_v<LambdaTraceObserver>);
static_assert(!std::is_copy_constructible_v<ProfileObserver>);
static_assert(!std::is_copy_assignable_v<ProfileObserver>);

namespace {

/// An observer that overrides only onEvent: the default onBatch must
/// forward every (event, verdict) pair to it in stream order.
class RecordingObserver final : public TraceObserver {
public:
  void onEvent(const BranchEvent &Event,
               const BranchVerdict &Verdict) override {
    Sites.push_back(Event.Site);
    Indices.push_back(Event.Index);
    Speculated.push_back(Verdict.Speculated);
  }
  std::vector<SiteId> Sites;
  std::vector<uint64_t> Indices;
  std::vector<bool> Speculated;
};

} // namespace

TEST(DriverTest, DefaultOnBatchForwardsPerEventInOrder) {
  const WorkloadSpec Spec = twoSiteSpec();
  ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;

  RecordingObserver PerEvent;
  {
    ReactiveController C(Cfg);
    runWorkload(C, Spec, Spec.refInput(), &PerEvent, /*BatchEvents=*/1);
  }
  RecordingObserver Batched;
  {
    ReactiveController C(Cfg);
    runWorkload(C, Spec, Spec.refInput(), &Batched, /*BatchEvents=*/257);
  }
  ASSERT_EQ(PerEvent.Sites.size(), Spec.RefEvents);
  EXPECT_EQ(PerEvent.Sites, Batched.Sites);
  EXPECT_EQ(PerEvent.Indices, Batched.Indices);
  EXPECT_EQ(PerEvent.Speculated, Batched.Speculated);
  // Indices arrive in stream order.
  for (size_t I = 0; I < Batched.Indices.size(); ++I)
    EXPECT_EQ(Batched.Indices[I], I);
}

TEST(DriverTest, MetricsCountEventsAndChunks) {
  const WorkloadSpec Spec = twoSiteSpec();
  {
    ReactiveController C(ReactiveConfig{});
    TraceRunMetrics Metrics;
    runWorkload(C, Spec, Spec.refInput(), nullptr, /*BatchEvents=*/4096,
                &Metrics);
    EXPECT_EQ(Metrics.Events, Spec.RefEvents);
    EXPECT_EQ(Metrics.Batches, (Spec.RefEvents + 4095) / 4096);
  }
  {
    ReactiveController C(ReactiveConfig{});
    TraceRunMetrics Metrics;
    runWorkload(C, Spec, Spec.refInput(), nullptr, /*BatchEvents=*/1,
                &Metrics);
    EXPECT_EQ(Metrics.Events, Spec.RefEvents);
    EXPECT_EQ(Metrics.Batches, Spec.RefEvents); // per-event reference path
  }
}

TEST(DriverTest, RunTraceFileMatchesGeneratorViaBothTiers) {
  const WorkloadSpec Spec = twoSiteSpec();
  const std::string Path =
      (std::filesystem::temp_directory_path() / "drv_runtracefile.sct2")
          .string();
  {
    std::ofstream Out(Path, std::ios::binary);
    TraceGenerator Gen(Spec, Spec.refInput());
    ASSERT_GT(writeTraceV2(Out, Gen), 0u);
  }

  ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;
  ReactiveController Reference(Cfg);
  const ControlStats Want = runWorkload(Reference, Spec, Spec.refInput());

  // Zero-copy mmap tier (the default) and the stream-reader fallback must
  // both reproduce the generator's stats exactly.
  const RunConfig Saved = RunConfig::global();
  for (const bool Mmap : {true, false}) {
    RunConfig Override = Saved;
    Override.TraceMmap = Mmap;
    RunConfig::setGlobal(Override);
    ReactiveController C(Cfg);
    EXPECT_EQ(runTraceFile(C, Path), Want) << "mmap=" << Mmap;
  }
  RunConfig::setGlobal(Saved);

  ReactiveController C(Cfg);
  EXPECT_THROW(runTraceFile(C, Path + ".does-not-exist"),
               std::runtime_error);
  std::remove(Path.c_str());
}

//===- tests/core/DriverTest.cpp ------------------------------------------===//

#include "core/Driver.h"

#include "core/ReactiveController.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::core;
using namespace specctrl::workload;

namespace {

WorkloadSpec twoSiteSpec() {
  WorkloadSpec Spec;
  Spec.Name = "drv";
  Spec.Seed = 5;
  Spec.RefEvents = 100000;
  Spec.NumPhases = 1;
  SiteSpec Biased;
  Biased.Behavior = BehaviorSpec::fixed(0.9995);
  Biased.Weight = 3.0;
  SiteSpec Noise;
  Noise.Behavior = BehaviorSpec::fixed(0.5);
  Noise.Weight = 1.0;
  Spec.Sites = {Biased, Noise};
  return Spec;
}

} // namespace

TEST(DriverTest, RunsWholeTrace) {
  const WorkloadSpec Spec = twoSiteSpec();
  ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;
  ReactiveController C(Cfg);
  const ControlStats &S = runWorkload(C, Spec, Spec.refInput());
  EXPECT_EQ(S.Branches, Spec.RefEvents);
  EXPECT_EQ(S.touchedCount(), 2u);
  // The biased site gets selected and speculated at ~75% of events.
  EXPECT_GT(S.correctRate(), 0.5);
  EXPECT_LT(S.incorrectRate(), 0.01);
}

TEST(DriverTest, HookSeesEveryEventAndVerdict) {
  const WorkloadSpec Spec = twoSiteSpec();
  ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;
  ReactiveController C(Cfg);

  uint64_t Events = 0, Speculated = 0;
  workload::TraceGenerator Gen(Spec, Spec.refInput());
  const ControlStats &S = runTrace(
      C, Gen, [&](const BranchEvent &E, const BranchVerdict &V) {
        ++Events;
        Speculated += V.Speculated;
        EXPECT_LT(E.Site, 2u);
      });
  EXPECT_EQ(Events, Spec.RefEvents);
  EXPECT_EQ(Speculated, S.CorrectSpecs + S.IncorrectSpecs);
}

TEST(DriverTest, PartiallyConsumedGeneratorFinishes) {
  const WorkloadSpec Spec = twoSiteSpec();
  workload::TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  for (int I = 0; I < 1000; ++I)
    ASSERT_TRUE(Gen.next(E));
  ReactiveController C(ReactiveConfig{});
  const ControlStats &S = runTrace(C, Gen);
  EXPECT_EQ(S.Branches, Spec.RefEvents - 1000);
}

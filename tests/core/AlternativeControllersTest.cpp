//===- tests/core/AlternativeControllersTest.cpp --------------------------===//

#include "core/AlternativeControllers.h"

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "workload/TraceGenerator.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::core;

namespace {

ReactiveConfig fastConfig() {
  ReactiveConfig C;
  C.MonitorPeriod = 1000;
  C.WaitPeriod = 10000;
  C.OptLatency = 0;
  return C;
}

void feed(SpeculationController &C, SiteId Site, bool Taken, uint64_t Count,
          uint64_t &InstRet) {
  for (uint64_t I = 0; I < Count; ++I)
    C.onBranch(Site, Taken, InstRet += 5);
}

} // namespace

TEST(DynamoFlushTest, ClassifiesOnceAndDeploys) {
  DynamoFlushController C(fastConfig(), /*FlushInterval=*/1u << 30);
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet);
  EXPECT_TRUE(C.isDeployed(0));
  EXPECT_TRUE(C.deployedDirection(0));
  EXPECT_EQ(C.flushes(), 0u);
}

TEST(DynamoFlushTest, NoPerSiteFeedback) {
  // Between flushes the policy is open loop: a reversed site keeps
  // misspeculating.
  DynamoFlushController C(fastConfig(), 1u << 30);
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet);
  ASSERT_TRUE(C.isDeployed(0));
  feed(C, 0, false, 3000, InstRet);
  EXPECT_TRUE(C.isDeployed(0)); // still deployed, still wrong
  EXPECT_EQ(C.stats().IncorrectSpecs, 3000u);
}

TEST(DynamoFlushTest, FlushRevokesAndRelearns) {
  DynamoFlushController C(fastConfig(), /*FlushInterval=*/20000);
  uint64_t InstRet = 0;
  feed(C, 0, true, 1000, InstRet); // InstRet = 5000, deployed taken
  ASSERT_TRUE(C.isDeployed(0));
  // The site reverses; the flush at 20k instructions drops the stale
  // fragment and the next monitor learns the new direction.
  feed(C, 0, false, 3000, InstRet); // crosses the flush boundary
  EXPECT_GE(C.flushes(), 1u);
  feed(C, 0, false, 1000, InstRet); // enough post-flush monitoring
  EXPECT_TRUE(C.isDeployed(0));
  EXPECT_FALSE(C.deployedDirection(0)); // relearned
}

TEST(DynamoFlushTest, SitsBetweenOpenAndClosedLoop) {
  // The paper's Sec. 5 prediction, as a property over a changing
  // workload.
  using namespace specctrl::workload;
  WorkloadSpec Spec;
  Spec.Name = "dyn";
  Spec.Seed = 77;
  Spec.RefEvents = 500000;
  Spec.NumPhases = 1;
  auto Add = [&Spec](BehaviorSpec B, double W) {
    SiteSpec S;
    S.Behavior = B;
    S.Weight = W;
    Spec.Sites.push_back(S);
  };
  Add(BehaviorSpec::fixed(0.9995), 6);
  Add(BehaviorSpec::fixed(0.0005), 6);
  Add(BehaviorSpec::flipAt(0.9995, 0.005, 40000), 4);
  Add(BehaviorSpec::periodic(0.998, 0.002, 30000), 4);
  Add(BehaviorSpec::fixed(0.5), 4);

  ReactiveConfig Closed = fastConfig();
  ReactiveConfig Open = fastConfig();
  Open.EnableEviction = false;
  Open.EnableRevisit = false;

  ReactiveController ClosedC(Closed);
  ReactiveController OpenC(Open, "open");
  DynamoFlushController FlushC(fastConfig(), /*FlushInterval=*/300000);

  const double ClosedRate =
      runWorkload(ClosedC, Spec, Spec.refInput()).incorrectRate();
  const double OpenRate =
      runWorkload(OpenC, Spec, Spec.refInput()).incorrectRate();
  const double FlushRate =
      runWorkload(FlushC, Spec, Spec.refInput()).incorrectRate();

  EXPECT_LT(ClosedRate, FlushRate);
  EXPECT_LT(FlushRate, OpenRate);
}

TEST(HardwareCounterTest, LearnsAndAdaptsPerInstance) {
  HardwareCounterController C;
  uint64_t InstRet = 0;
  feed(C, 0, true, 100, InstRet);
  EXPECT_TRUE(C.isDeployed(0));
  EXPECT_TRUE(C.deployedDirection(0));
  const uint64_t WrongBefore = C.stats().IncorrectSpecs;
  // Reversal: a hardware counter adapts within a few instances.
  feed(C, 0, false, 100, InstRet);
  const uint64_t WrongDelta = C.stats().IncorrectSpecs - WrongBefore;
  EXPECT_LE(WrongDelta, 4u);
  EXPECT_FALSE(C.deployedDirection(0));
}

TEST(HardwareCounterTest, UnbiasedSiteRarelyConfident) {
  HardwareCounterController C;
  uint64_t InstRet = 0;
  for (int I = 0; I < 10000; ++I)
    C.onBranch(0, I % 2 == 0, InstRet += 5);
  // Strict alternation keeps the counter in the weak states mostly.
  const ControlStats &S = C.stats();
  EXPECT_LT(S.CorrectSpecs + S.IncorrectSpecs, 5100u);
}

TEST(HardwareCounterTest, NeverRequestsCodeChanges) {
  HardwareCounterController C;
  uint64_t InstRet = 0;
  feed(C, 0, true, 10000, InstRet);
  feed(C, 0, false, 10000, InstRet);
  EXPECT_EQ(C.stats().DeployRequests, 0u);
  EXPECT_EQ(C.stats().RevokeRequests, 0u);
}

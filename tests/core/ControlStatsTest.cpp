//===- tests/core/ControlStatsTest.cpp ------------------------------------===//

#include "core/ControlStats.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::core;

TEST(ControlStatsTest, EmptyStatsAreZero) {
  ControlStats S;
  EXPECT_DOUBLE_EQ(S.correctRate(), 0.0);
  EXPECT_DOUBLE_EQ(S.incorrectRate(), 0.0);
  EXPECT_DOUBLE_EQ(S.misspecDistance(), 0.0);
  EXPECT_EQ(S.touchedCount(), 0u);
  EXPECT_EQ(S.everBiasedCount(), 0u);
  EXPECT_EQ(S.evictedSiteCount(), 0u);
}

TEST(ControlStatsTest, RatesAndDistance) {
  ControlStats S;
  S.Branches = 1000;
  S.CorrectSpecs = 400;
  S.IncorrectSpecs = 10;
  S.LastInstRet = 65000;
  EXPECT_DOUBLE_EQ(S.correctRate(), 0.4);
  EXPECT_DOUBLE_EQ(S.incorrectRate(), 0.01);
  EXPECT_DOUBLE_EQ(S.misspecDistance(), 6500.0);
}

TEST(ControlStatsTest, TouchGrowsAllPerSiteVectors) {
  ControlStats S;
  S.touch(5);
  ASSERT_EQ(S.Touched.size(), 6u);
  ASSERT_EQ(S.EverBiased.size(), 6u);
  ASSERT_EQ(S.SiteEvictions.size(), 6u);
  EXPECT_EQ(S.touchedCount(), 1u);
  S.touch(2);
  EXPECT_EQ(S.touchedCount(), 2u);
  EXPECT_EQ(S.Touched.size(), 6u); // no shrink
  S.touch(5);                      // idempotent
  EXPECT_EQ(S.touchedCount(), 2u);
}

TEST(ControlStatsTest, PerSiteCounters) {
  ControlStats S;
  S.touch(0);
  S.touch(1);
  S.touch(2);
  S.EverBiased[0] = 1;
  S.EverBiased[2] = 1;
  S.SiteEvictions[2] = 3;
  EXPECT_EQ(S.everBiasedCount(), 2u);
  EXPECT_EQ(S.evictedSiteCount(), 1u);
}

//===- tests/profile/InitialBehaviorTest.cpp ------------------------------===//

#include "profile/InitialBehavior.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::profile;

TEST(InitialBehaviorTest, SelectsInitiallyBiasedSite) {
  InitialBehaviorProfile P({100});
  // Site 0: perfectly biased for 100 execs, then 400 more biased execs.
  for (int I = 0; I < 500; ++I)
    P.addOutcome(0, true);
  // Site 1: unbiased noise, same volume.
  for (int I = 0; I < 500; ++I)
    P.addOutcome(1, I % 2 == 0);

  const SelectionResult R = P.evaluate(0, 0.99);
  EXPECT_EQ(R.SelectedSites, 1u);
  // Benefit counts only post-window executions: 400 of 1000 total.
  EXPECT_NEAR(R.Correct, 0.4, 1e-12);
  EXPECT_NEAR(R.Incorrect, 0.0, 1e-12);
}

TEST(InitialBehaviorTest, FalsePositiveMisspeculates) {
  InitialBehaviorProfile P({100});
  // Initially biased taken, then fully reversed (the Fig. 3 hazard).
  for (int I = 0; I < 100; ++I)
    P.addOutcome(0, true);
  for (int I = 0; I < 900; ++I)
    P.addOutcome(0, false);

  const SelectionResult R = P.evaluate(0, 0.99);
  EXPECT_EQ(R.SelectedSites, 1u);
  EXPECT_NEAR(R.Correct, 0.0, 1e-12);
  EXPECT_NEAR(R.Incorrect, 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(P.falsePositiveFraction(0, 0.99, 0.99), 1.0);
}

TEST(InitialBehaviorTest, LongerWindowAvoidsFalsePositive) {
  InitialBehaviorProfile P({100, 1000});
  for (int I = 0; I < 100; ++I)
    P.addOutcome(0, true);
  for (int I = 0; I < 900; ++I)
    P.addOutcome(0, false);

  // Over the first 1000 executions the bias is only 90%.
  const SelectionResult R = P.evaluate(1, 0.99);
  EXPECT_EQ(R.SelectedSites, 0u);
  EXPECT_DOUBLE_EQ(R.Incorrect, 0.0);
}

TEST(InitialBehaviorTest, LongerWindowLosesBenefit) {
  InitialBehaviorProfile P({100, 1000});
  for (int I = 0; I < 2000; ++I)
    P.addOutcome(0, true);
  const SelectionResult Short = P.evaluate(0, 0.99);
  const SelectionResult Long = P.evaluate(1, 0.99);
  EXPECT_GT(Short.Correct, Long.Correct);
  EXPECT_NEAR(Short.Correct, 1900 / 2000.0, 1e-12);
  EXPECT_NEAR(Long.Correct, 1000 / 2000.0, 1e-12);
}

TEST(InitialBehaviorTest, SitesBelowWindowNeverSelected) {
  InitialBehaviorProfile P({1000});
  for (int I = 0; I < 999; ++I)
    P.addOutcome(0, true);
  const SelectionResult R = P.evaluate(0, 0.99);
  EXPECT_EQ(R.SelectedSites, 0u);
}

TEST(InitialBehaviorTest, PaperWindows) {
  const auto W = InitialBehaviorProfile::paperWindows();
  ASSERT_EQ(W.size(), 5u);
  EXPECT_EQ(W.front(), 1000u);
  EXPECT_EQ(W.back(), 1000000u);
}

TEST(InitialBehaviorTest, DirectionFromPrefixNotWholeRun) {
  InitialBehaviorProfile P({10});
  // Prefix not-taken-biased, suffix taken-heavy: speculation follows the
  // prefix direction and eats the suffix as misspeculations.
  for (int I = 0; I < 10; ++I)
    P.addOutcome(0, false);
  for (int I = 0; I < 30; ++I)
    P.addOutcome(0, true);
  const SelectionResult R = P.evaluate(0, 0.99);
  ASSERT_EQ(R.SelectedSites, 1u);
  EXPECT_NEAR(R.Incorrect, 30 / 40.0, 1e-12);
}

//===- tests/profile/BiasSeriesTest.cpp -----------------------------------===//

#include "profile/BiasSeries.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::profile;

TEST(BiasSeriesTest, BlocksCloseAtBlockSize) {
  BiasSeriesCollector C({7}, 100);
  for (uint64_t I = 0; I < 250; ++I)
    C.addOutcome(7, I % 10 != 0, I);
  C.finish(249);
  const auto &S = C.series(0);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_NEAR(S[0].TakenFraction, 0.9, 1e-12);
  EXPECT_NEAR(S[1].TakenFraction, 0.9, 1e-12);
  // Final partial block (50 outcomes) closed by finish().
  EXPECT_NEAR(S[2].TakenFraction, 0.9, 1e-12);
  EXPECT_EQ(S[2].GlobalIndex, 249u);
}

TEST(BiasSeriesTest, UntrackedSitesIgnored) {
  BiasSeriesCollector C({3}, 10);
  for (uint64_t I = 0; I < 100; ++I)
    C.addOutcome(99, true, I);
  C.finish(100);
  EXPECT_TRUE(C.series(0).empty());
}

TEST(BiasSeriesTest, CapturesBehaviorChange) {
  BiasSeriesCollector C({0}, 1000);
  uint64_t G = 0;
  for (int B = 0; B < 20; ++B)
    for (int I = 0; I < 1000; ++I, ++G)
      C.addOutcome(0, true, G); // biased taken
  for (int B = 0; B < 20; ++B)
    for (int I = 0; I < 1000; ++I, ++G)
      C.addOutcome(0, I % 2 == 0, G); // unbiased
  C.finish(G);

  const auto &S = C.series(0);
  ASSERT_EQ(S.size(), 40u);
  EXPECT_NEAR(S[5].TakenFraction, 1.0, 1e-12);
  EXPECT_NEAR(S[30].TakenFraction, 0.5, 0.05);

  const auto Intervals = C.biasedIntervals(0, 0.99);
  ASSERT_EQ(Intervals.size(), 1u);
  EXPECT_EQ(Intervals[0].first, 0u);
  // The biased interval ends near the 20,000th event.
  EXPECT_NEAR(static_cast<double>(Intervals[0].second), 20000.0, 1500.0);
}

TEST(BiasSeriesTest, BiasedIntervalsBothDirections) {
  // Not-taken bias also counts as biased.
  BiasSeriesCollector C({0}, 100);
  uint64_t G = 0;
  for (int I = 0; I < 500; ++I, ++G)
    C.addOutcome(0, false, G);
  C.finish(G);
  const auto Intervals = C.biasedIntervals(0, 0.99);
  ASSERT_EQ(Intervals.size(), 1u);
}

TEST(BiasSeriesTest, MultipleTracks) {
  BiasSeriesCollector C({4, 9}, 50);
  for (uint64_t I = 0; I < 100; ++I) {
    C.addOutcome(4, true, I);
    C.addOutcome(9, false, I);
  }
  C.finish(100);
  ASSERT_EQ(C.series(0).size(), 2u);
  ASSERT_EQ(C.series(1).size(), 2u);
  EXPECT_DOUBLE_EQ(C.series(0)[0].TakenFraction, 1.0);
  EXPECT_DOUBLE_EQ(C.series(1)[0].TakenFraction, 0.0);
}

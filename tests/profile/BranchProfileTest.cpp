//===- tests/profile/BranchProfileTest.cpp --------------------------------===//

#include "profile/BranchProfile.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace specctrl;
using namespace specctrl::profile;

TEST(BranchProfileTest, CountsAndBias) {
  BranchProfile P(3);
  for (int I = 0; I < 99; ++I)
    P.addOutcome(0, true);
  P.addOutcome(0, false);
  for (int I = 0; I < 10; ++I)
    P.addOutcome(1, false);

  EXPECT_EQ(P.executions(0), 100u);
  EXPECT_EQ(P.taken(0), 99u);
  EXPECT_TRUE(P.majorityTaken(0));
  EXPECT_DOUBLE_EQ(P.bias(0), 0.99);
  EXPECT_EQ(P.majorityCount(0), 99u);
  EXPECT_EQ(P.minorityCount(0), 1u);

  EXPECT_FALSE(P.majorityTaken(1));
  EXPECT_DOUBLE_EQ(P.bias(1), 1.0);
  EXPECT_DOUBLE_EQ(P.bias(2), 0.0);

  EXPECT_EQ(P.totalExecutions(), 110u);
  EXPECT_EQ(P.touchedSites(), 2u);
}

TEST(BranchProfileTest, GrowsOnDemand) {
  BranchProfile P;
  P.addOutcome(41, true);
  EXPECT_EQ(P.numSites(), 42u);
  EXPECT_EQ(P.executions(41), 1u);
}

TEST(BranchProfileTest, TieBreaksToTaken) {
  BranchProfile P(1);
  P.addOutcome(0, true);
  P.addOutcome(0, false);
  EXPECT_TRUE(P.majorityTaken(0));
  EXPECT_DOUBLE_EQ(P.bias(0), 0.5);
}

TEST(BranchProfileTest, SaveLoadRoundTrip) {
  BranchProfile P(4);
  P.addOutcome(0, true);
  P.addOutcome(2, false);
  P.addOutcome(2, false);
  P.addOutcome(3, true);

  std::stringstream SS;
  P.save(SS);
  const BranchProfile Q = BranchProfile::load(SS);
  ASSERT_EQ(Q.numSites(), 4u);
  for (SiteId S = 0; S < 4; ++S) {
    EXPECT_EQ(Q.taken(S), P.taken(S)) << S;
    EXPECT_EQ(Q.notTaken(S), P.notTaken(S)) << S;
  }
}

TEST(BranchProfileTest, LoadRejectsGarbage) {
  std::stringstream SS("not a profile");
  const BranchProfile Q = BranchProfile::load(SS);
  EXPECT_EQ(Q.numSites(), 0u);
}

//===- tests/profile/ParetoTest.cpp ---------------------------------------===//

#include "profile/Pareto.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::profile;

namespace {

/// Three sites: 99% biased (1000 execs), 90% biased (500), 50% (500).
BranchProfile makeProfile() {
  BranchProfile P(3);
  for (int I = 0; I < 990; ++I)
    P.addOutcome(0, true);
  for (int I = 0; I < 10; ++I)
    P.addOutcome(0, false);
  for (int I = 0; I < 450; ++I)
    P.addOutcome(1, false);
  for (int I = 0; I < 50; ++I)
    P.addOutcome(1, true);
  for (int I = 0; I < 250; ++I)
    P.addOutcome(2, true);
  for (int I = 0; I < 250; ++I)
    P.addOutcome(2, false);
  return P;
}

} // namespace

TEST(ParetoTest, CurveIsMonotone) {
  const BranchProfile P = makeProfile();
  const auto Curve = paretoCurve(P);
  ASSERT_EQ(Curve.size(), 4u); // origin + 3 sites
  EXPECT_DOUBLE_EQ(Curve[0].Correct, 0.0);
  for (size_t I = 1; I < Curve.size(); ++I) {
    EXPECT_GE(Curve[I].Correct, Curve[I - 1].Correct);
    EXPECT_GE(Curve[I].Incorrect, Curve[I - 1].Incorrect);
    EXPECT_LE(Curve[I].BiasThreshold, Curve[I - 1].BiasThreshold);
  }
  // Speculating on everything: correct = sum of majorities / total.
  const double Total = 2000.0;
  EXPECT_NEAR(Curve.back().Correct, (990 + 450 + 250) / Total, 1e-12);
  EXPECT_NEAR(Curve.back().Incorrect, (10 + 50 + 250) / Total, 1e-12);
}

TEST(ParetoTest, CurveOrdersByBias) {
  const BranchProfile P = makeProfile();
  const auto Curve = paretoCurve(P);
  // First selected site is the most biased one (site 0, 99%).
  EXPECT_NEAR(Curve[1].Correct, 990 / 2000.0, 1e-12);
  EXPECT_NEAR(Curve[1].Incorrect, 10 / 2000.0, 1e-12);
  EXPECT_NEAR(Curve[1].BiasThreshold, 0.99, 1e-12);
}

TEST(ParetoTest, SelfTrainingSelection) {
  const BranchProfile P = makeProfile();
  const SelectionResult R = evaluateSelection(P, P, 0.95);
  EXPECT_EQ(R.SelectedSites, 1u);
  EXPECT_NEAR(R.Correct, 990 / 2000.0, 1e-12);
  EXPECT_NEAR(R.Incorrect, 10 / 2000.0, 1e-12);
  EXPECT_EQ(R.EvalBranches, 2000u);
}

TEST(ParetoTest, CrossInputSelectionUsesSelectionDirection) {
  // Selection profile says site 0 is taken-biased; the evaluation run
  // reverses it (input-dependent site).
  BranchProfile Train(1), Eval(1);
  for (int I = 0; I < 100; ++I)
    Train.addOutcome(0, true);
  for (int I = 0; I < 100; ++I)
    Eval.addOutcome(0, false);
  const SelectionResult R = evaluateSelection(Train, Eval, 0.99);
  EXPECT_EQ(R.SelectedSites, 1u);
  EXPECT_DOUBLE_EQ(R.Correct, 0.0);
  EXPECT_DOUBLE_EQ(R.Incorrect, 1.0);
}

TEST(ParetoTest, MinExecsFiltersColdSites) {
  BranchProfile Train(1), Eval(1);
  for (int I = 0; I < 5; ++I)
    Train.addOutcome(0, true);
  for (int I = 0; I < 100; ++I)
    Eval.addOutcome(0, true);
  EXPECT_EQ(evaluateSelection(Train, Eval, 0.99, 10).SelectedSites, 0u);
  EXPECT_EQ(evaluateSelection(Train, Eval, 0.99, 1).SelectedSites, 1u);
}

TEST(ParetoTest, SitesOnlyInEvalAreNotSelected) {
  // The paper: code regions the training input never reaches cannot be
  // selected for speculation.
  BranchProfile Train(1), Eval(2);
  for (int I = 0; I < 100; ++I)
    Train.addOutcome(0, true);
  for (int I = 0; I < 100; ++I)
    Eval.addOutcome(0, true);
  for (int I = 0; I < 100; ++I)
    Eval.addOutcome(1, true); // never profiled
  const SelectionResult R = evaluateSelection(Train, Eval, 0.99);
  EXPECT_EQ(R.SelectedSites, 1u);
  EXPECT_NEAR(R.Correct, 0.5, 1e-12);
}

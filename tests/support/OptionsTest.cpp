//===- tests/support/OptionsTest.cpp --------------------------------------===//

#include "support/Options.h"

#include <gtest/gtest.h>

using namespace specctrl;

namespace {

bool parse(OptionSet &Opts, std::initializer_list<const char *> Args) {
  std::vector<const char *> Argv = {"tool"};
  Argv.insert(Argv.end(), Args.begin(), Args.end());
  return Opts.parse(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(OptionsTest, Defaults) {
  OptionSet Opts("t");
  Opts.addFlag("csv", "csv output");
  Opts.addInt("scale", 4, "scale");
  Opts.addDouble("threshold", 0.99, "threshold");
  Opts.addString("bench", "all", "benchmark");
  ASSERT_TRUE(parse(Opts, {}));
  EXPECT_FALSE(Opts.getFlag("csv"));
  EXPECT_EQ(Opts.getInt("scale"), 4);
  EXPECT_DOUBLE_EQ(Opts.getDouble("threshold"), 0.99);
  EXPECT_EQ(Opts.getString("bench"), "all");
}

TEST(OptionsTest, EqualsAndSpaceForms) {
  OptionSet Opts("t");
  Opts.addInt("n", 0, "n");
  Opts.addString("s", "", "s");
  ASSERT_TRUE(parse(Opts, {"--n=42", "--s", "hello"}));
  EXPECT_EQ(Opts.getInt("n"), 42);
  EXPECT_EQ(Opts.getString("s"), "hello");
}

TEST(OptionsTest, FlagForms) {
  OptionSet Opts("t");
  Opts.addFlag("a", "a");
  Opts.addFlag("b", "b");
  ASSERT_TRUE(parse(Opts, {"--a", "--b=false"}));
  EXPECT_TRUE(Opts.getFlag("a"));
  EXPECT_FALSE(Opts.getFlag("b"));
}

TEST(OptionsTest, UnknownOptionFails) {
  OptionSet Opts("t");
  EXPECT_FALSE(parse(Opts, {"--nope"}));
  EXPECT_TRUE(Opts.wasError());
}

TEST(OptionsTest, BadIntegerFails) {
  OptionSet Opts("t");
  Opts.addInt("n", 0, "n");
  EXPECT_FALSE(parse(Opts, {"--n=abc"}));
  EXPECT_TRUE(Opts.wasError());
}

TEST(OptionsTest, PositionalCollected) {
  OptionSet Opts("t");
  Opts.addFlag("x", "x");
  ASSERT_TRUE(parse(Opts, {"one", "--x", "two"}));
  ASSERT_EQ(Opts.positional().size(), 2u);
  EXPECT_EQ(Opts.positional()[0], "one");
  EXPECT_EQ(Opts.positional()[1], "two");
}

TEST(OptionsTest, HelpReturnsFalseWithoutError) {
  OptionSet Opts("t");
  EXPECT_FALSE(parse(Opts, {"--help"}));
  EXPECT_FALSE(Opts.wasError());
}

TEST(OptionsTest, NegativeAndHexIntegers) {
  OptionSet Opts("t");
  Opts.addInt("a", 0, "a");
  Opts.addInt("b", 0, "b");
  ASSERT_TRUE(parse(Opts, {"--a=-17", "--b=0x10"}));
  EXPECT_EQ(Opts.getInt("a"), -17);
  EXPECT_EQ(Opts.getInt("b"), 16);
}

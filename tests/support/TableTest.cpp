//===- tests/support/TableTest.cpp ----------------------------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace specctrl;

TEST(TableTest, TextAlignment) {
  Table T({"name", "value"});
  T.row().cell("alpha").cell(uint64_t(7));
  T.row().cell("b").cell(uint64_t(12345));
  std::ostringstream OS;
  T.printText(OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("12345"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TableTest, CsvBasic) {
  Table T({"a", "b"});
  T.row().cell("x").cell(int64_t(-3));
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "a,b\nx,-3\n");
}

TEST(TableTest, CsvEscaping) {
  Table T({"a"});
  T.row().cell("has,comma");
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "a\n\"has,comma\"\n");

  Table Q({"a"});
  Q.row().cell("say \"hi\"");
  std::ostringstream OS2;
  Q.printCsv(OS2);
  EXPECT_EQ(OS2.str(), "a\n\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, NumericCells) {
  Table T({"d", "p"});
  T.row().cell(3.14159, 2).cellPercent(0.448);
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "d,p\n3.14,44.8%\n");
}

TEST(TableTest, RowAndColumnCounts) {
  Table T({"a", "b", "c"});
  EXPECT_EQ(T.numColumns(), 3u);
  EXPECT_EQ(T.numRows(), 0u);
  T.row().cell("1").cell("2").cell("3");
  EXPECT_EQ(T.numRows(), 1u);
}

//===- tests/support/StatisticsTest.cpp -----------------------------------===//

#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace specctrl;

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
}

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.variance(), 4.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats A, B, All;
  for (int I = 0; I < 100; ++I) {
    const double X = I * 0.37 - 5;
    (I < 40 ? A : B).add(X);
    All.add(X);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(A.min(), All.min());
  EXPECT_DOUBLE_EQ(A.max(), All.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats A, Empty;
  A.add(3.0);
  A.merge(Empty);
  EXPECT_EQ(A.count(), 1u);
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 1u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 3.0);
}

TEST(Log2HistogramTest, BucketBoundaries) {
  Log2Histogram H;
  H.add(0);
  H.add(1);
  H.add(2);
  H.add(3);
  H.add(4);
  EXPECT_EQ(H.bucketCount(0), 2u); // {0, 1}
  EXPECT_EQ(H.bucketCount(1), 2u); // [2, 4)
  EXPECT_EQ(H.bucketCount(2), 1u); // [4, 8)
  EXPECT_EQ(H.count(), 5u);
}

TEST(Log2HistogramTest, WeightedAdd) {
  Log2Histogram H;
  H.add(100, 7);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.bucketCount(6), 7u); // [64, 128)
}

TEST(Log2HistogramTest, QuantileMonotone) {
  Log2Histogram H;
  for (uint64_t X = 1; X <= 1024; ++X)
    H.add(X);
  const double Q25 = H.quantile(0.25);
  const double Q50 = H.quantile(0.5);
  const double Q90 = H.quantile(0.9);
  EXPECT_LE(Q25, Q50);
  EXPECT_LE(Q50, Q90);
  // The median of 1..1024 is ~512; log-bucket interpolation is coarse but
  // must land within the right bucket's decade.
  EXPECT_GE(Q50, 256.0);
  EXPECT_LE(Q50, 1024.0);
}

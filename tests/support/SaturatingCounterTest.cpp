//===- tests/support/SaturatingCounterTest.cpp ----------------------------===//

#include "support/SaturatingCounter.h"

#include <gtest/gtest.h>

using namespace specctrl;

TEST(SaturatingCounterTest, StartsAtInitial) {
  SaturatingCounter C(100, 5);
  EXPECT_EQ(C.value(), 5u);
  EXPECT_EQ(C.max(), 100u);
  EXPECT_FALSE(C.isSaturated());
}

TEST(SaturatingCounterTest, AddSaturatesAtMax) {
  SaturatingCounter C(10);
  EXPECT_FALSE(C.add(9));
  EXPECT_TRUE(C.add(5));
  EXPECT_EQ(C.value(), 10u);
  EXPECT_TRUE(C.isSaturated());
}

TEST(SaturatingCounterTest, SubSaturatesAtZero) {
  SaturatingCounter C(10, 3);
  C.sub(100);
  EXPECT_EQ(C.value(), 0u);
}

TEST(SaturatingCounterTest, PaperEvictionPattern) {
  // Table 2: +50 on misspeculation, -1 otherwise, saturate at 10,000.
  // Requires at least 200 misspeculations to evict.
  SaturatingCounter C(10000);
  int Misspecs = 0;
  while (!C.add(50))
    ++Misspecs;
  EXPECT_EQ(Misspecs + 1, 200);
}

TEST(SaturatingCounterTest, HysteresisToleratesBursts) {
  // A short burst of misspeculations followed by correct runs drains back.
  SaturatingCounter C(10000);
  for (int I = 0; I < 100; ++I)
    C.add(50); // 5000
  EXPECT_FALSE(C.isSaturated());
  for (int I = 0; I < 5000; ++I)
    C.sub(1);
  EXPECT_EQ(C.value(), 0u);
}

TEST(SaturatingCounterTest, ResetClears) {
  SaturatingCounter C(10, 10);
  EXPECT_TRUE(C.isSaturated());
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

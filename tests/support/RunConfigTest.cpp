//===- tests/support/RunConfigTest.cpp ------------------------------------===//
//
// The typed run configuration: canonical environment names, the
// deprecated aliases (honored only when the canonical name is unset,
// with a one-line note), and the execution-tier parsing.
//
//===----------------------------------------------------------------------===//

#include "support/RunConfig.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace specctrl;

namespace {

/// Scoped save/clear/restore for every variable fromEnv reads, so the
/// tests are hermetic under the ctest harness (which itself exports
/// SPECCTRL_VERIFY=1).
class ScopedEnv {
public:
  ScopedEnv() {
    for (const char *Name : Names) {
      const char *Value = std::getenv(Name);
      Saved.emplace_back(Name, Value ? std::string(Value) : std::string());
      HadValue.push_back(Value != nullptr);
      ::unsetenv(Name);
    }
  }
  ~ScopedEnv() {
    for (size_t I = 0; I < Saved.size(); ++I) {
      if (HadValue[I])
        ::setenv(Saved[I].first, Saved[I].second.c_str(), 1);
      else
        ::unsetenv(Saved[I].first);
    }
  }

  void set(const char *Name, const char *Value) {
    ::setenv(Name, Value, 1);
  }

private:
  static constexpr const char *Names[10] = {
      "SPECCTRL_VERIFY",        "SPECCTRL_VERIFY_DISTILL",
      "SPECCTRL_ARENA_VERBOSE", "SPECCTRL_ARENA_DEBUG",
      "SPECCTRL_EXEC_TIER",     "SPECCTRL_SERVE_EPOCH_EVENTS",
      "SPECCTRL_SERVE_RING_EVENTS", "SPECCTRL_TRACE_MMAP",
      "SPECCTRL_SWEEP_PROCS",   "SPECCTRL_VERIFY_SPECLEAK"};
  std::vector<std::pair<const char *, std::string>> Saved;
  std::vector<bool> HadValue;
};

} // namespace

TEST(ExecTier, NamesRoundTrip) {
  EXPECT_STREQ(execTierName(ExecTier::Reference), "reference");
  EXPECT_STREQ(execTierName(ExecTier::Threaded), "threaded");

  ExecTier Tier = ExecTier::Reference;
  EXPECT_TRUE(parseExecTier("threaded", Tier));
  EXPECT_EQ(Tier, ExecTier::Threaded);
  EXPECT_TRUE(parseExecTier("reference", Tier));
  EXPECT_EQ(Tier, ExecTier::Reference);

  Tier = ExecTier::Threaded;
  EXPECT_FALSE(parseExecTier("jit", Tier));
  EXPECT_EQ(Tier, ExecTier::Threaded) << "unknown names leave Out untouched";
}

TEST(RunConfig, DefaultsWithEmptyEnvironment) {
  ScopedEnv Env;
  std::string Warnings;
  const RunConfig Cfg = RunConfig::fromEnv(&Warnings);
  EXPECT_FALSE(Cfg.VerifyDistill);
  EXPECT_FALSE(Cfg.ArenaVerbose);
  EXPECT_EQ(Cfg.Tier, ExecTier::Reference);
  EXPECT_TRUE(Warnings.empty());
}

TEST(RunConfig, CanonicalNamesParseSilently) {
  ScopedEnv Env;
  Env.set("SPECCTRL_VERIFY", "1");
  Env.set("SPECCTRL_ARENA_VERBOSE", "1");
  Env.set("SPECCTRL_EXEC_TIER", "threaded");
  std::string Warnings;
  const RunConfig Cfg = RunConfig::fromEnv(&Warnings);
  EXPECT_TRUE(Cfg.VerifyDistill);
  EXPECT_TRUE(Cfg.ArenaVerbose);
  EXPECT_EQ(Cfg.Tier, ExecTier::Threaded);
  EXPECT_TRUE(Warnings.empty()) << Warnings;
}

TEST(RunConfig, ZeroAndEmptyMeanOff) {
  ScopedEnv Env;
  Env.set("SPECCTRL_VERIFY", "0");
  Env.set("SPECCTRL_ARENA_VERBOSE", "");
  const RunConfig Cfg = RunConfig::fromEnv(nullptr);
  EXPECT_FALSE(Cfg.VerifyDistill);
  EXPECT_FALSE(Cfg.ArenaVerbose);
}

TEST(RunConfig, DeprecatedAliasesWorkWithWarning) {
  ScopedEnv Env;
  Env.set("SPECCTRL_VERIFY_DISTILL", "1");
  Env.set("SPECCTRL_ARENA_DEBUG", "1");
  std::string Warnings;
  const RunConfig Cfg = RunConfig::fromEnv(&Warnings);
  EXPECT_TRUE(Cfg.VerifyDistill);
  EXPECT_TRUE(Cfg.ArenaVerbose);
  EXPECT_NE(Warnings.find("SPECCTRL_VERIFY_DISTILL is deprecated"),
            std::string::npos)
      << Warnings;
  EXPECT_NE(Warnings.find("SPECCTRL_ARENA_DEBUG is deprecated"),
            std::string::npos)
      << Warnings;
}

TEST(RunConfig, CanonicalNameWinsOverAlias) {
  ScopedEnv Env;
  Env.set("SPECCTRL_VERIFY", "0");
  Env.set("SPECCTRL_VERIFY_DISTILL", "1");
  std::string Warnings;
  const RunConfig Cfg = RunConfig::fromEnv(&Warnings);
  EXPECT_FALSE(Cfg.VerifyDistill)
      << "a set canonical name must shadow the alias entirely";
  EXPECT_TRUE(Warnings.empty())
      << "no deprecation note when the alias is shadowed: " << Warnings;
}

TEST(RunConfig, UnknownTierWarnsAndKeepsReference) {
  ScopedEnv Env;
  Env.set("SPECCTRL_EXEC_TIER", "turbo");
  std::string Warnings;
  const RunConfig Cfg = RunConfig::fromEnv(&Warnings);
  EXPECT_EQ(Cfg.Tier, ExecTier::Reference);
  EXPECT_NE(Warnings.find("SPECCTRL_EXEC_TIER=turbo"), std::string::npos)
      << Warnings;
}

TEST(RunConfig, ServeKnobsDefaultAndParse) {
  ScopedEnv Env;
  {
    const RunConfig Cfg = RunConfig::fromEnv(nullptr);
    EXPECT_EQ(Cfg.ServeEpochEvents, 8192u);
    EXPECT_EQ(Cfg.ServeRingEvents, 8192u);
  }
  Env.set("SPECCTRL_SERVE_EPOCH_EVENTS", "1024");
  Env.set("SPECCTRL_SERVE_RING_EVENTS", "65536");
  std::string Warnings;
  const RunConfig Cfg = RunConfig::fromEnv(&Warnings);
  EXPECT_EQ(Cfg.ServeEpochEvents, 1024u);
  EXPECT_EQ(Cfg.ServeRingEvents, 65536u);
  EXPECT_TRUE(Warnings.empty()) << Warnings;
}

TEST(RunConfig, ServeKnobsRejectMalformedValuesWithWarning) {
  ScopedEnv Env;
  Env.set("SPECCTRL_SERVE_EPOCH_EVENTS", "0");
  Env.set("SPECCTRL_SERVE_RING_EVENTS", "lots");
  std::string Warnings;
  const RunConfig Cfg = RunConfig::fromEnv(&Warnings);
  EXPECT_EQ(Cfg.ServeEpochEvents, 8192u) << "zero must keep the default";
  EXPECT_EQ(Cfg.ServeRingEvents, 8192u) << "junk must keep the default";
  EXPECT_NE(Warnings.find("SPECCTRL_SERVE_EPOCH_EVENTS=0"),
            std::string::npos)
      << Warnings;
  EXPECT_NE(Warnings.find("SPECCTRL_SERVE_RING_EVENTS=lots"),
            std::string::npos)
      << Warnings;
}

TEST(RunConfig, TraceMmapDefaultsOnAndZeroDisables) {
  ScopedEnv Env;
  EXPECT_TRUE(RunConfig::fromEnv().TraceMmap) << "mmap tier defaults on";
  Env.set("SPECCTRL_TRACE_MMAP", "0");
  EXPECT_FALSE(RunConfig::fromEnv().TraceMmap);
  Env.set("SPECCTRL_TRACE_MMAP", "1");
  EXPECT_TRUE(RunConfig::fromEnv().TraceMmap);
  Env.set("SPECCTRL_TRACE_MMAP", "");
  EXPECT_FALSE(RunConfig::fromEnv().TraceMmap) << "explicit empty means off";
}

TEST(RunConfig, VerifySpecLeakDefaultsOnAndZeroOptsOut) {
  ScopedEnv Env;
  EXPECT_TRUE(RunConfig::fromEnv().VerifySpecLeak)
      << "the SpecLeak check defaults on";
  Env.set("SPECCTRL_VERIFY_SPECLEAK", "0");
  EXPECT_FALSE(RunConfig::fromEnv().VerifySpecLeak);
  Env.set("SPECCTRL_VERIFY_SPECLEAK", "1");
  EXPECT_TRUE(RunConfig::fromEnv().VerifySpecLeak);
}

TEST(RunConfig, SweepProcsDefaultsAutoAndParses) {
  ScopedEnv Env;
  std::string Warnings;
  EXPECT_EQ(RunConfig::fromEnv(&Warnings).SweepProcs, 0u) << "0 = auto";
  Env.set("SPECCTRL_SWEEP_PROCS", "4");
  EXPECT_EQ(RunConfig::fromEnv(&Warnings).SweepProcs, 4u);
  EXPECT_TRUE(Warnings.empty()) << Warnings;
  Env.set("SPECCTRL_SWEEP_PROCS", "many");
  EXPECT_EQ(RunConfig::fromEnv(&Warnings).SweepProcs, 0u);
  EXPECT_NE(Warnings.find("SPECCTRL_SWEEP_PROCS=many"), std::string::npos)
      << Warnings;
}

TEST(RunConfig, SetGlobalOverrides) {
  const RunConfig Before = RunConfig::global();
  RunConfig Override = Before;
  Override.Tier = ExecTier::Threaded;
  RunConfig::setGlobal(Override);
  EXPECT_EQ(RunConfig::global().Tier, ExecTier::Threaded);
  RunConfig::setGlobal(Before); // restore for the rest of the binary
  EXPECT_EQ(RunConfig::global().Tier, Before.Tier);
}

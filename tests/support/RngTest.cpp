//===- tests/support/RngTest.cpp - Rng unit tests -------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace specctrl;

TEST(RngTest, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 100; ++I)
    Equal += A.next() == B.next();
  EXPECT_LT(Equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng A(7);
  std::vector<uint64_t> First;
  for (int I = 0; I < 16; ++I)
    First.push_back(A.next());
  A.reseed(7);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(A.next(), First[I]);
}

TEST(RngTest, NextBelowInRange) {
  Rng R(3);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng R(5);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 5000; ++I) {
    const uint64_t V = R.nextInRange(3, 6);
    ASSERT_GE(V, 3u);
    ASSERT_LE(V, 6u);
    SawLo |= V == 3;
    SawHi |= V == 6;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng R(11);
  double Sum = 0.0;
  for (int I = 0; I < 10000; ++I) {
    const double D = R.nextDouble();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng R(13);
  int True990 = 0;
  for (int I = 0; I < 100000; ++I)
    True990 += R.nextBool(0.99);
  EXPECT_NEAR(True990 / 100000.0, 0.99, 0.005);
  EXPECT_FALSE(R.nextBool(0.0));
  EXPECT_TRUE(R.nextBool(1.0));
}

TEST(RngTest, GeometricMeanMatches) {
  Rng R(17);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += static_cast<double>(R.nextGeometric(0.2));
  EXPECT_NEAR(Sum / N, 5.0, 0.2);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng Parent(21);
  Rng C1 = Parent.fork(1);
  Rng C2 = Parent.fork(2);
  Rng C1Again = Parent.fork(1);
  EXPECT_EQ(C1.next(), C1Again.next());
  // Forking does not advance the parent.
  Rng Parent2(21);
  (void)Parent2.fork(99);
  Rng ParentRef(21);
  EXPECT_EQ(Parent2.next(), ParentRef.next());
  // Adjacent stream ids decorrelate.
  int Equal = 0;
  for (int I = 0; I < 100; ++I)
    Equal += C1.next() == C2.next();
  EXPECT_LT(Equal, 3);
}

//===- tests/support/FormatTest.cpp ---------------------------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace specctrl;

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(formatPercent(0.448), "44.8%");
  EXPECT_EQ(formatPercent(0.00023, 3), "0.023%");
  EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(FormatTest, FormatWithCommas) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(formatWithCommas(65000), "65,000");
}

TEST(FormatTest, FormatMagnitude) {
  EXPECT_EQ(formatMagnitude(950), "950");
  EXPECT_EQ(formatMagnitude(65000), "65.0k");
  EXPECT_EQ(formatMagnitude(1200000), "1.20M");
  EXPECT_EQ(formatMagnitude(2.5e9), "2.50G");
}

//===- tests/support/AliasTableTest.cpp -----------------------------------===//

#include "support/AliasTable.h"

#include <gtest/gtest.h>

#include <vector>

using namespace specctrl;

TEST(AliasTableTest, SingleEntry) {
  AliasTable T({1.0});
  Rng R(1);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(T.sample(R), 0u);
}

TEST(AliasTableTest, UniformWeights) {
  AliasTable T(std::vector<double>(4, 1.0));
  Rng R(2);
  std::vector<int> Counts(4, 0);
  const int N = 40000;
  for (int I = 0; I < N; ++I)
    ++Counts[T.sample(R)];
  for (int C : Counts)
    EXPECT_NEAR(static_cast<double>(C) / N, 0.25, 0.02);
}

TEST(AliasTableTest, SkewedWeights) {
  AliasTable T({8.0, 1.0, 1.0});
  Rng R(3);
  std::vector<int> Counts(3, 0);
  const int N = 50000;
  for (int I = 0; I < N; ++I)
    ++Counts[T.sample(R)];
  EXPECT_NEAR(Counts[0] / static_cast<double>(N), 0.8, 0.02);
  EXPECT_NEAR(Counts[1] / static_cast<double>(N), 0.1, 0.01);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable T({1.0, 0.0, 1.0});
  Rng R(4);
  for (int I = 0; I < 20000; ++I)
    EXPECT_NE(T.sample(R), 1u);
}

TEST(AliasTableTest, LargeTableDistribution) {
  // Zipf-ish weights over 1000 entries: the head must dominate.
  std::vector<double> W(1000);
  for (size_t I = 0; I < W.size(); ++I)
    W[I] = 1.0 / static_cast<double>(I + 1);
  AliasTable T(W);
  Rng R(5);
  int Head = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Head += T.sample(R) < 10;
  // Top-10 mass of Zipf(1) over 1000 entries is ~39%.
  EXPECT_NEAR(Head / static_cast<double>(N), 0.39, 0.03);
}

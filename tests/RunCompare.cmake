# Runs a report binary and compares its stdout against a golden file
# and/or against a second invocation (e.g. serial vs --jobs 4).
#
# Usage:
#   cmake -DBIN=<exe> -DARGS="<args>" [-DGOLDEN=<file>] [-DARGS2="<args>"]
#         -P RunCompare.cmake
#
# ARGS/ARGS2 are whitespace-separated argument strings.  With GOLDEN set,
# the first run's output must equal the file byte-for-byte; with ARGS2
# set, the second run's output must equal the first's.

if(NOT DEFINED BIN)
  message(FATAL_ERROR "RunCompare.cmake: BIN not set")
endif()

separate_arguments(ARGS_LIST UNIX_COMMAND "${ARGS}")
execute_process(COMMAND "${BIN}" ${ARGS_LIST}
                OUTPUT_VARIABLE Out1 RESULT_VARIABLE Rc1)
if(NOT Rc1 EQUAL 0)
  message(FATAL_ERROR "${BIN} ${ARGS} exited with ${Rc1}")
endif()

if(DEFINED GOLDEN)
  file(READ "${GOLDEN}" Want)
  if(NOT Out1 STREQUAL Want)
    message(FATAL_ERROR
            "output of ${BIN} ${ARGS} differs from golden ${GOLDEN}")
  endif()
endif()

if(DEFINED ARGS2)
  separate_arguments(ARGS2_LIST UNIX_COMMAND "${ARGS2}")
  execute_process(COMMAND "${BIN}" ${ARGS2_LIST}
                  OUTPUT_VARIABLE Out2 RESULT_VARIABLE Rc2)
  if(NOT Rc2 EQUAL 0)
    message(FATAL_ERROR "${BIN} ${ARGS2} exited with ${Rc2}")
  endif()
  if(NOT Out1 STREQUAL Out2)
    message(FATAL_ERROR
            "output of ${BIN} differs between '${ARGS}' and '${ARGS2}'")
  endif()
endif()

//===- tests/mssp/BranchPredictorTest.cpp ---------------------------------===//

#include "mssp/BranchPredictor.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::mssp;

TEST(GsharePredictorTest, LearnsAlwaysTaken) {
  GsharePredictor P(10);
  for (int I = 0; I < 1000; ++I)
    P.predictAndUpdate(42, true);
  uint64_t Before = P.mispredicts();
  for (int I = 0; I < 1000; ++I)
    P.predictAndUpdate(42, true);
  EXPECT_EQ(P.mispredicts(), Before); // perfectly predicted now
  EXPECT_EQ(P.lookups(), 2000u);
}

TEST(GsharePredictorTest, LearnsAlternatingViaHistory) {
  // gshare's global history disambiguates a strict alternation.
  GsharePredictor P(12);
  bool Taken = false;
  for (int I = 0; I < 4000; ++I) {
    Taken = !Taken;
    P.predictAndUpdate(7, Taken);
  }
  const uint64_t Warm = P.mispredicts();
  for (int I = 0; I < 4000; ++I) {
    Taken = !Taken;
    P.predictAndUpdate(7, Taken);
  }
  // Nearly no new mispredicts after warmup.
  EXPECT_LT(P.mispredicts() - Warm, 50u);
}

TEST(GsharePredictorTest, RandomBranchMispredictsHalf) {
  GsharePredictor P(12);
  Rng R(5);
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    P.predictAndUpdate(3, R.nextBool(0.5));
  EXPECT_NEAR(static_cast<double>(P.mispredicts()) / N, 0.5, 0.05);
}

TEST(GsharePredictorTest, BiasedBranchMostlyCorrect) {
  GsharePredictor P(12);
  Rng R(6);
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    P.predictAndUpdate(9, R.nextBool(0.99));
  EXPECT_LT(static_cast<double>(P.mispredicts()) / N, 0.05);
}

TEST(ReturnAddressStackTest, MatchedCallsReturnCorrectly) {
  ReturnAddressStack Ras(8);
  for (int Depth = 0; Depth < 5; ++Depth)
    Ras.pushCall(100 + Depth);
  for (int Depth = 4; Depth >= 0; --Depth)
    EXPECT_TRUE(Ras.popAndCheck(100 + Depth));
  EXPECT_EQ(Ras.mispredicts(), 0u);
  EXPECT_EQ(Ras.returns(), 5u);
}

TEST(ReturnAddressStackTest, UnderflowMispredicts) {
  ReturnAddressStack Ras(4);
  EXPECT_FALSE(Ras.popAndCheck(1));
  EXPECT_EQ(Ras.mispredicts(), 1u);
}

TEST(ReturnAddressStackTest, OverflowLosesOldEntries) {
  ReturnAddressStack Ras(2);
  Ras.pushCall(1);
  Ras.pushCall(2);
  Ras.pushCall(3); // evicts 1
  EXPECT_TRUE(Ras.popAndCheck(3));
  EXPECT_TRUE(Ras.popAndCheck(2));
  EXPECT_FALSE(Ras.popAndCheck(1)); // lost
}

//===- tests/mssp/MsspSimulatorTest.cpp -----------------------------------===//
//
// System-level MSSP tests: correctness of task verification/squash, the
// benefit of distillation, and the closed-vs-open-loop contrast (Fig. 7's
// mechanism at test scale).
//
//===----------------------------------------------------------------------===//

#include "mssp/MsspSimulator.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

/// A single-region program: two heavily biased sites plus one site that
/// flips direction mid-run.
SynthProgram makeFlippyProgram(uint64_t Iterations, uint64_t FlipAt) {
  SynthSpec Spec;
  Spec.Name = "flippy";
  Spec.Seed = 17;
  Spec.Iterations = Iterations;
  SynthRegion Region;
  SynthSite A, B, Flip;
  A.Behavior = BehaviorSpec::fixed(0.9995);
  B.Behavior = BehaviorSpec::fixed(0.0005);
  Flip.Behavior = BehaviorSpec::flipAt(0.9995, 0.0005, FlipAt);
  Region.Sites = {A, B, Flip};
  Spec.Regions = {Region};
  return synthesize(Spec);
}

MsspConfig fastControl(bool Eviction) {
  MsspConfig C;
  C.Control.MonitorPeriod = 1000;
  C.Control.WaitPeriod = 20000;
  C.Control.EnableEviction = Eviction;
  C.Control.EvictSaturation = 2000;
  C.TaskIterations = 4;
  return C;
}

} // namespace

TEST(MsspSimulatorTest, AllBiasedNoSquashAfterWarmup) {
  SynthSpec Spec;
  Spec.Name = "allbiased";
  Spec.Seed = 21;
  Spec.Iterations = 30000;
  SynthRegion Region;
  SynthSite A, B;
  A.Behavior = BehaviorSpec::fixed(1.0);
  B.Behavior = BehaviorSpec::fixed(0.0);
  Region.Sites = {A, B};
  Spec.Regions = {Region};
  SynthProgram P = synthesize(Spec);

  MsspSimulator Sim(P, fastControl(true));
  const MsspResult R = Sim.run();
  // One task per 4 iterations plus the loop-exit segment.
  EXPECT_EQ(R.Tasks, 30000u / 4 + 1);
  EXPECT_EQ(R.TaskSquashes, 0u); // deterministic sites never misspeculate
  EXPECT_GT(R.Regenerations, 0u);
  // The master really executed fewer instructions once distilled.
  EXPECT_LT(R.distillationRatio(), 0.95);
}

TEST(MsspSimulatorTest, MsspBeatsBaselineOnBiasedCode) {
  SynthProgram P = makeFlippyProgram(40000, /*FlipAt=*/1 << 30); // no flip
  const MsspConfig Cfg = fastControl(true);
  MsspSimulator Sim(P, Cfg);
  const MsspResult R = Sim.run();
  const uint64_t Baseline =
      simulateSuperscalarBaseline(P, Cfg.Machine);
  EXPECT_LT(R.TotalCycles, Baseline)
      << "MSSP must beat the superscalar on well-behaved code";
}

TEST(MsspSimulatorTest, MisbehavingSiteCausesSquashes) {
  SynthProgram P = makeFlippyProgram(40000, /*FlipAt=*/8000);
  MsspSimulator Open(P, fastControl(false));
  const MsspResult R = Open.run();
  // Once the site flips, nearly every task containing it squashes.
  EXPECT_GT(R.TaskSquashes, 1000u);
}

TEST(MsspSimulatorTest, ClosedLoopRecoversFromFlip) {
  SynthProgram P = makeFlippyProgram(40000, 8000);
  MsspSimulator Closed(P, fastControl(true));
  const MsspResult RC = Closed.run();

  SynthProgram P2 = makeFlippyProgram(40000, 8000);
  MsspSimulator Open(P2, fastControl(false));
  const MsspResult RO = Open.run();

  // Eviction caps the damage: far fewer squashes, far less time.
  EXPECT_LT(RC.TaskSquashes * 5, RO.TaskSquashes);
  EXPECT_LT(RC.TotalCycles, RO.TotalCycles);
  EXPECT_GE(RC.Controller.Evictions, 1u);
  EXPECT_EQ(RO.Controller.Evictions, 0u);
}

TEST(MsspSimulatorTest, SquashRecoveryPreservesCorrectness) {
  // Whatever squashing happened, the master's final state must equal a
  // plain architectural run of the original program.
  SynthProgram P = makeFlippyProgram(20000, 4000);
  MsspSimulator Sim(P, fastControl(true));
  (void)Sim.run();

  SynthProgram PRef = makeFlippyProgram(20000, 4000);
  fsim::Interpreter Ref(PRef.Mod, PRef.InitialMemory);
  ASSERT_EQ(Ref.run(~0ull >> 1), fsim::StopReason::Halted);

  // Re-run the simulation to inspect checker state at the end via the
  // result: checker instructions equal the reference instruction count.
  SynthProgram P3 = makeFlippyProgram(20000, 4000);
  MsspSimulator Sim3(P3, fastControl(true));
  const MsspResult R3 = Sim3.run();
  EXPECT_EQ(R3.CheckerInstructions, Ref.instructionsRetired());
}

TEST(MsspSimulatorTest, OptimizationLatencyBarelyMatters) {
  // Fig. 8's claim at test scale: 0 vs 100k-cycle latency ~ equal.
  auto RunWithLatency = [](uint64_t Latency) {
    SynthProgram P = makeFlippyProgram(40000, 1 << 30);
    MsspConfig Cfg = fastControl(true);
    Cfg.OptLatencyCycles = Latency;
    MsspSimulator Sim(P, Cfg);
    return Sim.run().TotalCycles;
  };
  const uint64_t T0 = RunWithLatency(0);
  const uint64_t T100k = RunWithLatency(100000);
  EXPECT_LT(static_cast<double>(T100k),
            static_cast<double>(T0) * 1.10);
}

TEST(MsspSimulatorTest, ControlSiteRequestsCompleteTrivially) {
  // The loop branch is ~100% biased; the controller will ask for it, but
  // the optimizer must not regenerate main (and must not deadlock).
  SynthProgram P = makeFlippyProgram(30000, 1 << 30);
  MsspConfig Cfg = fastControl(true);
  Cfg.Control.MonitorPeriod = 500;
  MsspSimulator Sim(P, Cfg);
  const MsspResult R = Sim.run();
  EXPECT_EQ(R.Tasks, 30000u / 4 + 1);
  // Program completed: the loop exit executed despite the loop site being
  // "deployed".
  EXPECT_GT(R.Controller.everBiasedCount(), 0u);
}

TEST(MsspSimulatorTest, ValueSpeculationShrinksFurther) {
  SynthSpec Spec;
  Spec.Name = "vc";
  Spec.Seed = 23;
  Spec.Iterations = 30000;
  SynthRegion Region;
  // The value-check branch itself is UNBIASED (cannot be asserted), but
  // its comparison bound is perfectly invariant: only value speculation
  // can shrink this gadget.
  SynthSite VC;
  VC.UseValueCheck = true;
  VC.Behavior = BehaviorSpec::fixed(0.7);
  VC.ValueInvariance = 1.0;
  SynthSite Plain;
  Plain.Behavior = BehaviorSpec::fixed(1.0);
  Region.Sites = {VC, Plain};
  Spec.Regions = {Region};

  auto Run = [&](bool ValueSpec) {
    SynthProgram P = synthesize(Spec);
    MsspConfig Cfg = fastControl(true);
    Cfg.EnableValueSpeculation = ValueSpec;
    Cfg.ValueControl.MonitorPeriod = 1000;
    Cfg.ValueControl.WaitPeriod = 20000;
    MsspSimulator Sim(P, Cfg);
    return Sim.run();
  };
  const MsspResult Without = Run(false);
  const MsspResult With = Run(true);
  EXPECT_EQ(With.TaskSquashes, 0u);
  EXPECT_LT(With.MasterInstructions, Without.MasterInstructions);
  // The value controller classified and deployed invariant loads.
  EXPECT_GT(With.ValueController.everBiasedCount(), 0u);
  EXPECT_GT(With.ValueController.correctRate(), 0.2);
}

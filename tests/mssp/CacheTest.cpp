//===- tests/mssp/CacheTest.cpp -------------------------------------------===//

#include "mssp/Cache.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::mssp;

TEST(CacheModelTest, ColdMissThenHit) {
  CacheModel C({1024, 2, 64, 3});
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(7)); // same 8-word block
  EXPECT_FALSE(C.access(8)); // next block
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.accesses(), 4u);
}

TEST(CacheModelTest, GeometryFromConfig) {
  // 64KB, 2-way, 64B blocks -> 1024 blocks -> 512 sets.
  CacheModel C({64 * 1024, 2, 64, 3});
  EXPECT_EQ(C.numSets(), 512u);
}

TEST(CacheModelTest, LruEviction) {
  // 2-way set: A, B fill the set; touching A keeps it; C evicts B.
  CacheModel C({2 * 64 * 2, 2, 64, 1}); // 2 sets, 2 ways
  const uint64_t SetStride = 2 * 8;     // words per set round
  const uint64_t A = 0, B = SetStride, X = 2 * SetStride;
  EXPECT_FALSE(C.access(A));
  EXPECT_FALSE(C.access(B));
  EXPECT_TRUE(C.access(A));  // A is MRU
  EXPECT_FALSE(C.access(X)); // evicts B (LRU)
  EXPECT_TRUE(C.access(A));
  EXPECT_FALSE(C.access(B)); // B was evicted
}

TEST(CacheModelTest, WorkingSetFitsNoCapacityMisses) {
  CacheModel C({8 * 1024, 8, 64, 3}); // the trailing-core L1
  // 512 words = 4KB working set; after warmup everything hits.
  for (uint64_t W = 0; W < 512; ++W)
    C.access(W);
  const uint64_t WarmMisses = C.misses();
  for (int Round = 0; Round < 10; ++Round)
    for (uint64_t W = 0; W < 512; ++W)
      C.access(W);
  EXPECT_EQ(C.misses(), WarmMisses);
}

TEST(CacheModelTest, StreamingThrashesSmallCache) {
  CacheModel C({1024, 2, 64, 3}); // 16 blocks
  uint64_t Misses = 0;
  for (int Round = 0; Round < 4; ++Round)
    for (uint64_t Block = 0; Block < 64; ++Block)
      Misses += !C.access(Block * 8);
  // 64-block stream >> 16-block cache: essentially all miss.
  EXPECT_GT(Misses, 250u);
}

TEST(CacheModelTest, ResetClearsState) {
  CacheModel C({1024, 2, 64, 3});
  C.access(0);
  C.reset();
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.access(0)); // cold again
}

TEST(CacheModelTest, LruClockSurvivesWrap) {
  // SPEC-length runs push the LRU clock past 2^32.  With the old 32-bit
  // timestamps, a line touched after the wrap stored a tiny LastUse and
  // looked older than everything resident before the wrap, inverting
  // recency order in every set spanning it.
  CacheModel C({2 * 64 * 2, 2, 64, 1}); // 2 sets, 2 ways
  const uint64_t SetStride = 2 * 8;     // words per set round
  const uint64_t A = 0, B = SetStride, X = 2 * SetStride;
  EXPECT_FALSE(C.access(A)); // A resident, pre-wrap timestamp
  // March the clock across the 32-bit boundary without simulating four
  // billion accesses; the next access lands at time ~2^32.
  C.advanceClockForTesting((1ull << 32) - 2);
  EXPECT_FALSE(C.access(B)); // B fills the other way, post-wrap timestamp
  EXPECT_TRUE(C.access(B));
  // The victim must be A (genuinely oldest).  Under a wrapped 32-bit
  // clock B's timestamp compared smaller and B was evicted instead.
  EXPECT_FALSE(C.access(X));
  EXPECT_TRUE(C.access(B));  // B survived the eviction
  EXPECT_FALSE(C.access(A)); // A was the victim
}

//===- tests/mssp/MsspGoldenTest.cpp - MSSP fast-path golden pins ---------===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
// Pins MsspResult bit-exactly against values captured from the
// pre-fast-path implementation (the seed of this optimization work), and
// proves every MsspFastPath flag combination produces identical results.
// The fast path's whole contract is "never changes results"; these tests
// are that contract.
//
//===----------------------------------------------------------------------===//

#include "mssp/MsspSimulator.h"
#include "workload/SpecSuite.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

using namespace specctrl;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

/// The Fig. 7 short-run control configuration every golden uses.
MsspConfig fig7Config() {
  MsspConfig Cfg;
  Cfg.Control.MonitorPeriod = 1000;
  Cfg.Control.EnableEviction = true;
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 100000;
  return Cfg;
}

MsspFastPath maskPath(int Mask) {
  MsspFastPath FP;
  FP.IncrementalDigest = (Mask & 1) != 0;
  FP.MemoizedDistill = (Mask & 2) != 0;
  FP.DenseTables = (Mask & 4) != 0;
  return FP;
}

MsspResult runMssp(const std::string &Bench, uint64_t Iterations,
                   MsspConfig Cfg, int Mask) {
  const SynthProgram Program =
      synthesize(makeSynthSpecFor(profileByName(Bench), Iterations));
  Cfg.FastPath = maskPath(Mask);
  MsspSimulator Sim(Program, Cfg);
  return Sim.run();
}

void expectStatsEq(const core::ControlStats &A, const core::ControlStats &B,
                   const std::string &Tag) {
  EXPECT_EQ(A.Branches, B.Branches) << Tag;
  EXPECT_EQ(A.LastInstRet, B.LastInstRet) << Tag;
  EXPECT_EQ(A.CorrectSpecs, B.CorrectSpecs) << Tag;
  EXPECT_EQ(A.IncorrectSpecs, B.IncorrectSpecs) << Tag;
  EXPECT_EQ(A.DeployRequests, B.DeployRequests) << Tag;
  EXPECT_EQ(A.RevokeRequests, B.RevokeRequests) << Tag;
  EXPECT_EQ(A.SuppressedRequests, B.SuppressedRequests) << Tag;
  EXPECT_EQ(A.Evictions, B.Evictions) << Tag;
  EXPECT_EQ(A.Revisits, B.Revisits) << Tag;
  EXPECT_EQ(A.EventsConsumed, B.EventsConsumed) << Tag;
}

/// Everything except the cache counters, which are definitionally zero
/// without MemoizedDistill (their own invariant is checked separately).
void expectResultsEq(const MsspResult &A, const MsspResult &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.TotalCycles, B.TotalCycles) << Tag;
  EXPECT_EQ(A.Tasks, B.Tasks) << Tag;
  EXPECT_EQ(A.TaskSquashes, B.TaskSquashes) << Tag;
  EXPECT_EQ(A.MasterInstructions, B.MasterInstructions) << Tag;
  EXPECT_EQ(A.CheckerInstructions, B.CheckerInstructions) << Tag;
  EXPECT_EQ(A.OptRequests, B.OptRequests) << Tag;
  EXPECT_EQ(A.Regenerations, B.Regenerations) << Tag;
  EXPECT_EQ(A.MasterBranchMispredicts, B.MasterBranchMispredicts) << Tag;
  expectStatsEq(A.Controller, B.Controller, Tag + "/branch-ctrl");
  expectStatsEq(A.ValueController, B.ValueController, Tag + "/value-ctrl");
}

/// The memoization counters account for every redeployment exactly once
/// when the flag is on, and stay untouched when it is off.
void expectCacheCounterInvariant(const MsspResult &R, int Mask,
                                 const std::string &Tag) {
  if ((Mask & 2) != 0) {
    EXPECT_EQ(R.DistillCacheHits + R.DistillCacheMisses, R.Regenerations)
        << Tag;
  } else {
    EXPECT_EQ(R.DistillCacheHits, 0u) << Tag;
    EXPECT_EQ(R.DistillCacheMisses, 0u) << Tag;
  }
}

/// Values captured from the pre-optimization implementation (seed commit,
/// full-digest verification, map-based tables, unkeyed code cache).
struct Golden {
  uint64_t TotalCycles, Tasks, TaskSquashes;
  uint64_t MasterInstructions, CheckerInstructions;
  uint64_t OptRequests, Regenerations, MasterBranchMispredicts;
  uint64_t CtrlCorrect, CtrlIncorrect, CtrlEvict, CtrlDeploy, CtrlRevoke;
  uint64_t ValCorrect, ValEvict;
};

void expectGolden(const MsspResult &R, const Golden &G,
                  const std::string &Tag) {
  EXPECT_EQ(R.TotalCycles, G.TotalCycles) << Tag;
  EXPECT_EQ(R.Tasks, G.Tasks) << Tag;
  EXPECT_EQ(R.TaskSquashes, G.TaskSquashes) << Tag;
  EXPECT_EQ(R.MasterInstructions, G.MasterInstructions) << Tag;
  EXPECT_EQ(R.CheckerInstructions, G.CheckerInstructions) << Tag;
  EXPECT_EQ(R.OptRequests, G.OptRequests) << Tag;
  EXPECT_EQ(R.Regenerations, G.Regenerations) << Tag;
  EXPECT_EQ(R.MasterBranchMispredicts, G.MasterBranchMispredicts) << Tag;
  EXPECT_EQ(R.Controller.CorrectSpecs, G.CtrlCorrect) << Tag;
  EXPECT_EQ(R.Controller.IncorrectSpecs, G.CtrlIncorrect) << Tag;
  EXPECT_EQ(R.Controller.Evictions, G.CtrlEvict) << Tag;
  EXPECT_EQ(R.Controller.DeployRequests, G.CtrlDeploy) << Tag;
  EXPECT_EQ(R.Controller.RevokeRequests, G.CtrlRevoke) << Tag;
  EXPECT_EQ(R.ValueController.CorrectSpecs, G.ValCorrect) << Tag;
  EXPECT_EQ(R.ValueController.Evictions, G.ValEvict) << Tag;
}

/// Runs one golden configuration on the legacy path (mask 0) and the full
/// fast path (mask 7) and pins both to the captured values.
void checkGolden(const std::string &Bench, uint64_t Iterations,
                 MsspConfig Cfg, const Golden &G) {
  for (const int Mask : {0, 7}) {
    const MsspResult R = runMssp(Bench, Iterations, Cfg, Mask);
    expectGolden(R, G, Bench + "/mask" + std::to_string(Mask));
    expectCacheCounterInvariant(R, Mask,
                                Bench + "/mask" + std::to_string(Mask));
  }
}

// ---- Seed-captured goldens (20000 iterations each) -----------------------

TEST(MsspGoldenTest, Bzip2Closed1k) {
  checkGolden("bzip2", 20000, fig7Config(),
              {2689804, 5001, 69, 1134835, 1311721, 10, 6, 19242, 28507,
               103, 2, 8, 2, 0, 0});
}

TEST(MsspGoldenTest, Bzip2Open1k) {
  MsspConfig Cfg = fig7Config();
  Cfg.Control.EnableEviction = false;
  checkGolden("bzip2", 20000, Cfg,
              {2912949, 5001, 749, 1119202, 1311721, 8, 4, 18381, 30056,
               2296, 0, 8, 0, 0, 0});
}

TEST(MsspGoldenTest, GccClosed1kLatency5k) {
  MsspConfig Cfg = fig7Config();
  Cfg.OptLatencyCycles = 5000; // pins the pending-completion batching
  checkGolden("gcc", 20000, Cfg,
              {2110646, 5001, 48, 1109765, 1344065, 13, 5, 13307, 47469,
               75, 1, 12, 1, 0, 0});
}

TEST(MsspGoldenTest, GccValueSpeculation) {
  MsspConfig Cfg = fig7Config();
  Cfg.EnableValueSpeculation = true;
  Cfg.ValueControl = Cfg.Control;
  checkGolden("gcc", 20000, Cfg,
              {2106625, 5001, 46, 1109244, 1344065, 26, 5, 13300, 47575,
               70, 1, 12, 1, 47575, 1});
}

TEST(MsspGoldenTest, Bzip2TinyTasksAndBuffer) {
  MsspConfig Cfg = fig7Config();
  Cfg.TaskIterations = 2;
  Cfg.MaxOutstandingTasks = 2;
  checkGolden("bzip2", 20000, Cfg,
              {3091204, 10001, 81, 1134832, 1311721, 10, 6, 19241, 28506,
               102, 2, 8, 2, 0, 0});
}

// ---- Flag-combination bit-identity ---------------------------------------

TEST(MsspGoldenTest, AllFlagCombosBitIdenticalBzip2) {
  const MsspResult Legacy = runMssp("bzip2", 10000, fig7Config(), 0);
  for (int Mask = 1; Mask <= 7; ++Mask) {
    const MsspResult R = runMssp("bzip2", 10000, fig7Config(), Mask);
    expectResultsEq(R, Legacy, "bzip2/mask" + std::to_string(Mask));
    expectCacheCounterInvariant(R, Mask,
                                "bzip2/mask" + std::to_string(Mask));
  }
}

TEST(MsspGoldenTest, AllFlagCombosBitIdenticalGccValueSpec) {
  MsspConfig Cfg = fig7Config();
  Cfg.EnableValueSpeculation = true;
  Cfg.ValueControl = Cfg.Control;
  const MsspResult Legacy = runMssp("gcc", 10000, Cfg, 0);
  for (int Mask = 1; Mask <= 7; ++Mask) {
    const MsspResult R = runMssp("gcc", 10000, Cfg, Mask);
    expectResultsEq(R, Legacy, "gcc-vs/mask" + std::to_string(Mask));
    expectCacheCounterInvariant(R, Mask,
                                "gcc-vs/mask" + std::to_string(Mask));
  }
}

// ---- Completion ordering --------------------------------------------------

// With a long optimization latency several pending requests become ready
// on the same task boundary, so one processOptCompletions call drains a
// batch: region rebuild order and request completion order are what this
// pins (fast and legacy paths must agree exactly; mcf's oscillating
// periodic branches make the batch non-trivial).
TEST(MsspGoldenTest, CompletionBatchOrdering) {
  for (const uint64_t Latency : {0ull, 5000ull, 200000ull}) {
    MsspConfig Cfg = fig7Config();
    Cfg.OptLatencyCycles = Latency;
    const MsspResult Legacy = runMssp("mcf", 10000, Cfg, 0);
    const MsspResult Fast = runMssp("mcf", 10000, Cfg, 7);
    expectResultsEq(Fast, Legacy, "mcf/lat" + std::to_string(Latency));
    expectCacheCounterInvariant(Fast, 7,
                                "mcf/lat" + std::to_string(Latency));
  }
}

} // namespace

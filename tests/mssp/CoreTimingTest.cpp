//===- tests/mssp/CoreTimingTest.cpp --------------------------------------===//

#include "mssp/CoreTiming.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::mssp;

namespace {

fsim::InstLocation loc() { return {}; }
ir::Instruction nop() { return ir::Instruction::makeNop(); }

CoreConfig leading() { return MachineConfig().Leading; }

} // namespace

TEST(CoreTimingTest, BaseIssueCost) {
  CoreTiming T(leading(), nullptr, 10, 200);
  for (int I = 0; I < 400; ++I)
    T.onInstruction(nop(), loc());
  // 4-wide: 400 instructions = 100 cycles.
  EXPECT_EQ(T.cycles(), 100u);
  EXPECT_EQ(T.instructions(), 400u);
}

TEST(CoreTimingTest, PartialGroupRoundsUp) {
  CoreTiming T(leading(), nullptr, 10, 200);
  for (int I = 0; I < 5; ++I)
    T.onInstruction(nop(), loc());
  EXPECT_EQ(T.cycles(), 2u);
}

TEST(CoreTimingTest, MispredictChargesPipelineDepth) {
  CoreTiming T(leading(), nullptr, 10, 200);
  // Random-ish alternation on a cold predictor: first update on a weakly
  // not-taken counter with Taken=true mispredicts.
  T.onBranch(5, true);
  EXPECT_EQ(T.cycles(), 12u); // depth 12, no instructions yet
}

TEST(CoreTimingTest, CacheMissesStallHierarchically) {
  CacheModel L2(MachineConfig().L2);
  CoreTiming T(leading(), &L2, 10, 200);
  // Cold access: L1 miss (+10) and L2 miss (+200).
  T.onLoad(loc(), 0, 0);
  EXPECT_EQ(T.cycles(), 210u);
  // Hit in L1 afterwards: free.
  T.onLoad(loc(), 0, 0);
  EXPECT_EQ(T.cycles(), 210u);
  EXPECT_EQ(T.l1Misses(), 1u);
}

TEST(CoreTimingTest, L2HitCheaperThanMemory) {
  CacheModel L2(MachineConfig().L2);
  CoreTiming A(leading(), &L2, 10, 200);
  A.onLoad(loc(), 0, 0); // warms shared L2 (and A's L1)
  // A second core with a cold L1 but the warm shared L2.
  CoreTiming B(leading(), &L2, 10, 200);
  B.onLoad(loc(), 0, 0);
  EXPECT_EQ(B.cycles(), 10u); // L1 miss, L2 hit
}

TEST(CoreTimingTest, BiasedBranchesBecomeCheap) {
  CoreTiming T(leading(), nullptr, 10, 200);
  for (int I = 0; I < 10000; ++I)
    T.onBranch(3, true);
  // Only warmup mispredicts: one per fresh history-indexed counter while
  // the global history register fills, then none.
  EXPECT_LE(T.branchMispredicts(), 20u);
}

TEST(CoreTimingTest, CallReturnBalancedIsFree) {
  CoreTiming T(leading(), nullptr, 10, 200);
  for (int I = 0; I < 100; ++I) {
    T.onCall(7);
    T.onReturn(7);
  }
  EXPECT_EQ(T.cycles(), 0u);
}

TEST(CoreTimingTest, ExternalStallsAccumulate) {
  CoreTiming T(leading(), nullptr, 10, 200);
  T.addStallCycles(400);
  EXPECT_EQ(T.cycles(), 400u);
}

TEST(CoreTimingTest, BulkChargeMatchesPerInstruction) {
  // addInstructions(N) must be bit-identical to N recordInstruction()
  // calls at every observation point -- the timing-fused tier's whole
  // issue accounting rests on this.  Exercise charges that straddle group
  // boundaries in every phase.
  const MachineConfig M;
  for (const CoreConfig &Core : {M.Leading, M.Trailing}) {
    CoreTiming PerInst(Core, nullptr, 10, 200);
    CoreTiming Bulk(Core, nullptr, 10, 200);
    uint64_t Total = 0;
    for (uint64_t N : {1ull, 3ull, 4ull, 7ull, 64ull, 1ull, 0ull, 5ull}) {
      for (uint64_t I = 0; I < N; ++I)
        PerInst.recordInstruction();
      Bulk.addInstructions(N);
      Total += N;
      ASSERT_EQ(PerInst.cycles(), Bulk.cycles()) << "after " << Total;
      ASSERT_EQ(PerInst.instructions(), Bulk.instructions());
      EXPECT_EQ(Bulk.instructions(), Total);
    }
  }
}

TEST(CoreTimingTest, BulkChargeInterleavesWithStalls) {
  // Issue accumulation is order-free between cycle reads: charging a
  // slice's instructions after its event stalls gives the same cycles as
  // the reference's interleaved accounting.
  CoreTiming Interleaved(leading(), nullptr, 10, 200);
  CoreTiming Batched(leading(), nullptr, 10, 200);
  // Interleaved: 5 insts, mispredict, 3 insts.
  for (int I = 0; I < 5; ++I)
    Interleaved.recordInstruction();
  Interleaved.onBranch(5, true);
  for (int I = 0; I < 3; ++I)
    Interleaved.recordInstruction();
  // Batched: the event first, the slice's whole charge after.
  Batched.onBranch(5, true);
  Batched.addInstructions(8);
  EXPECT_EQ(Interleaved.cycles(), Batched.cycles());
  EXPECT_EQ(Interleaved.instructions(), Batched.instructions());
}

TEST(CoreTimingTest, NarrowCoreIsSlower) {
  const MachineConfig M;
  CoreTiming Wide(M.Leading, nullptr, 10, 200);
  CoreTiming Narrow(M.Trailing, nullptr, 10, 200);
  for (int I = 0; I < 1000; ++I) {
    Wide.onInstruction(nop(), loc());
    Narrow.onInstruction(nop(), loc());
  }
  EXPECT_EQ(Wide.cycles(), 250u);
  EXPECT_EQ(Narrow.cycles(), 500u);
}

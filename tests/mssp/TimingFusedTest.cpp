//===- tests/mssp/TimingFusedTest.cpp - Fused-tier exactness --------------===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
// The timing-fused tier's contract: driving the threaded backend through
// runTimed (block-charged issue accounting, event-only policies) is
// bit-identical to the reference per-instruction observer path -- same
// cycle counts, same timing-model state, same event streams with the same
// reconstructed completed-instruction counts, and same MsspResult --
// across every module of the 12-benchmark seed suite, its distillation
// pairs, and mid-run stop/resume slicing.  `ctest -R timing_fused` is the
// stable handle for the whole suite-wide exactness check.
//
//===----------------------------------------------------------------------===//

#include "exec/TimedRun.h"

#include "distill/Distiller.h"
#include "fsim/Interpreter.h"
#include "mssp/CoreTiming.h"
#include "mssp/MsspSimulator.h"
#include "workload/ProgramSynthesizer.h"
#include "workload/SpecSuite.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

using namespace specctrl;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

constexpr uint64_t TestIterations = 1500;
constexpr uint64_t AllFuel = ~0ull >> 1;

/// One timing-relevant event: kind, two payload words, and the
/// completed-instruction count the consumer saw (the quantity the fused
/// loop reconstructs instead of counting per instruction).
using Event = std::array<uint64_t, 4>;
enum EventKind : uint64_t { EvBranch, EvLoad, EvStore, EvCall, EvRet };

/// Reference drive: per-instruction observer over the interpreter,
/// counting completed instructions exactly like the MSSP checker observer
/// (incremented in onInstruction, i.e. after the events of the current
/// instruction fire).  Optionally requests a stop after every KStop-th
/// store, mirroring the MSSP task-boundary mechanism.
class RefRecorder {
public:
  RefRecorder(CoreTiming &T, fsim::ExecBackend &Backend, uint64_t KStop = 0)
      : T(T), Backend(Backend), KStop(KStop) {}

  std::vector<Event> Events;

  void onInstruction(const ir::Instruction &, const fsim::InstLocation &) {
    ++InstRet;
    T.recordInstruction();
  }
  void onBranch(ir::SiteId Site, bool Taken) {
    T.recordBranch(Site, Taken);
    Events.push_back({EvBranch + (Site << 3), Taken ? 1ull : 0ull, 0, InstRet});
  }
  void onLoad(const fsim::InstLocation &, uint64_t Addr, uint64_t Value) {
    T.recordMemoryAccess(Addr);
    Events.push_back({EvLoad, Addr, Value, InstRet});
  }
  void onStore(uint64_t Addr, uint64_t Value, uint64_t) {
    T.recordMemoryAccess(Addr);
    Events.push_back({EvStore, Addr, Value, 0});
    if (KStop && ++Stores % KStop == 0)
      Backend.requestStop();
  }
  void onCall(uint32_t Callee) {
    T.recordCall(Callee);
    Events.push_back({EvCall, Callee, 0, 0});
  }
  void onReturn(uint32_t Callee) {
    T.recordReturn(Callee);
    Events.push_back({EvRet, Callee, 0, 0});
  }

private:
  CoreTiming &T;
  fsim::ExecBackend &Backend;
  uint64_t KStop;
  uint64_t InstRet = 0;
  uint64_t Stores = 0;
};

/// Fused drive: event-only policy for runTimed, recording the loop's
/// reconstructed Done in the same slot RefRecorder puts its InstRet.
class FusedRecorder {
public:
  FusedRecorder(CoreTiming &T, exec::ThreadedBackend &Backend,
                uint64_t KStop = 0)
      : T(T), Backend(Backend), KStop(KStop) {}

  std::vector<Event> Events;

  void noteBranch(ir::SiteId Site, bool Taken, uint64_t Done) {
    T.recordBranch(Site, Taken);
    Events.push_back({EvBranch + (Site << 3), Taken ? 1ull : 0ull, 0, Done});
  }
  void noteLoad(const fsim::InstLocation &, uint64_t Addr, uint64_t Value,
                uint64_t Done) {
    T.recordMemoryAccess(Addr);
    Events.push_back({EvLoad, Addr, Value, Done});
  }
  void noteStore(uint64_t Addr, uint64_t Value) {
    T.recordMemoryAccess(Addr);
    Events.push_back({EvStore, Addr, Value, 0});
    if (KStop && ++Stores % KStop == 0)
      Backend.requestStop();
  }
  void noteCall(uint32_t Callee) {
    T.recordCall(Callee);
    Events.push_back({EvCall, Callee, 0, 0});
  }
  void noteReturn(uint32_t Callee) {
    T.recordReturn(Callee);
    Events.push_back({EvRet, Callee, 0, 0});
  }

private:
  CoreTiming &T;
  exec::ThreadedBackend &Backend;
  uint64_t KStop;
  uint64_t Stores = 0;
};

/// Everything a timing consumer can observe from one run.
struct TimingOutcome {
  uint64_t Cycles = 0;
  uint64_t Insts = 0;
  uint64_t Mispredicts = 0;
  uint64_t L1Misses = 0;
  uint64_t Retired = 0;
  bool Halted = false;
  std::vector<Event> Events;
  std::vector<uint64_t> Memory;
};

void expectSameOutcome(const TimingOutcome &Ref, const TimingOutcome &Fused,
                       const std::string &What) {
  EXPECT_EQ(Ref.Cycles, Fused.Cycles) << What;
  EXPECT_EQ(Ref.Insts, Fused.Insts) << What;
  EXPECT_EQ(Ref.Mispredicts, Fused.Mispredicts) << What;
  EXPECT_EQ(Ref.L1Misses, Fused.L1Misses) << What;
  EXPECT_EQ(Ref.Retired, Fused.Retired) << What;
  EXPECT_EQ(Ref.Halted, Fused.Halted) << What;
  EXPECT_EQ(Ref.Memory, Fused.Memory) << What << ": final memory differs";
  ASSERT_EQ(Ref.Events.size(), Fused.Events.size())
      << What << ": event counts differ";
  for (size_t I = 0; I < Ref.Events.size(); ++I)
    ASSERT_EQ(Ref.Events[I], Fused.Events[I])
        << What << ": first divergence at event " << I;
}

/// Reference outcome: interpreter + per-instruction observer, single shot.
TimingOutcome runReference(const SynthProgram &P, const ir::Function *Version,
                           uint32_t FuncId) {
  const MachineConfig M;
  fsim::Interpreter Interp(P.Mod, P.InitialMemory);
  if (Version)
    Interp.setCodeVersion(FuncId, Version);
  CacheModel L2(M.L2);
  CoreTiming Timing(M.Leading, &L2, M.L2.LatencyCycles,
                    M.MemoryLatencyCycles);
  RefRecorder Obs(Timing, Interp);
  EXPECT_EQ(Interp.runWith(AllFuel, Obs), fsim::StopReason::Halted);
  return {Timing.cycles(),        Timing.instructions(),
          Timing.branchMispredicts(), Timing.l1Misses(),
          Interp.instructionsRetired(), Interp.halted(),
          std::move(Obs.Events),  Interp.memory()};
}

/// Fused outcome: threaded backend driven through runTimed in fuel slices
/// of \p SliceFuel (AllFuel = single shot), bulk-charging each slice's
/// straight-line cost exactly like the MSSP task loop does.
TimingOutcome runFused(const SynthProgram &P, const ir::Function *Version,
                       uint32_t FuncId, uint64_t SliceFuel,
                       uint64_t *SlicesOut = nullptr) {
  const MachineConfig M;
  exec::ThreadedBackend Backend(P.Mod, P.InitialMemory);
  if (Version)
    Backend.setCodeVersion(FuncId, Version);
  CacheModel L2(M.L2);
  CoreTiming Timing(M.Leading, &L2, M.L2.LatencyCycles,
                    M.MemoryLatencyCycles);
  FusedRecorder Policy(Timing, Backend);
  uint64_t Slices = 0;
  fsim::StopReason Reason = fsim::StopReason::FuelExhausted;
  while (Reason == fsim::StopReason::FuelExhausted) {
    const uint64_t Before = Backend.instructionsRetired();
    Reason = Backend.runTimed(SliceFuel, Policy);
    Timing.addInstructions(Backend.instructionsRetired() - Before);
    ++Slices;
  }
  EXPECT_EQ(Reason, fsim::StopReason::Halted);
  if (SlicesOut)
    *SlicesOut = Slices;
  return {Timing.cycles(),        Timing.instructions(),
          Timing.branchMispredicts(), Timing.l1Misses(),
          Backend.instructionsRetired(), Backend.halted(),
          std::move(Policy.Events), Backend.memory()};
}

/// The per-region dominant-direction distillation request (the
/// DistillerFuzz / MSSP idiom).
distill::DistillRequest regionRequest(const SynthProgram &P,
                                      uint32_t FuncId) {
  distill::DistillRequest Request;
  for (const SynthSiteInfo &Info : P.Sites)
    if (!Info.IsControlSite && Info.FunctionId == FuncId)
      Request.BranchAssertions[Info.Site] = Info.Behavior.BiasA >= 0.5;
  return Request;
}

class TimingFused : public ::testing::TestWithParam<std::string> {
protected:
  SynthProgram synthProgram() {
    return synthesize(
        makeSynthSpecFor(profileByName(GetParam()), TestIterations));
  }
};

} // namespace

// The original (undistilled) module: the fused loop's cycles, timing-model
// state, event stream, and reconstructed Done counts are bit-identical to
// the per-instruction reference.
TEST_P(TimingFused, OriginalTimingBitExact) {
  const SynthProgram P = synthProgram();
  expectSameOutcome(runReference(P, nullptr, 0),
                    runFused(P, nullptr, 0, AllFuel), "original");
}

// Every distillation pair: each region function distilled under its
// dominant-direction assertions -- the exact code versions the MSSP
// master dispatches, with the speculative control flow the fused branch
// handlers must time identically.
TEST_P(TimingFused, DistilledPairsTimingBitExact) {
  const SynthProgram P = synthProgram();
  for (uint32_t FuncId : P.RegionFunctions) {
    const distill::DistillResult Result = distill::distillFunction(
        P.Mod.function(FuncId), regionRequest(P, FuncId));
    const std::string What =
        GetParam() + "/region-fn-" + std::to_string(FuncId);
    expectSameOutcome(runReference(P, &Result.Distilled, FuncId),
                      runFused(P, &Result.Distilled, FuncId, AllFuel),
                      What);
  }
}

// Fuel slicing: running the fused loop in prime-sized slices (cutting
// through blocks, fused pairs, and call frames, with one bulk issue
// charge per slice) must reproduce the single-shot reference exactly.
TEST_P(TimingFused, SlicedTimingMatchesSingleShot) {
  const SynthProgram P = synthProgram();
  uint64_t Slices = 0;
  const TimingOutcome Fused = runFused(P, nullptr, 0, 997, &Slices);
  EXPECT_GT(Slices, 3u) << "slicing did not actually slice";
  expectSameOutcome(runReference(P, nullptr, 0), Fused, "sliced");
}

// Mid-task stop/resume: both paths request a stop from the store hook
// (the MSSP task-boundary mechanism) every 7th store and resume.  Stop
// positions, retire counts at each stop, and the merged stream must
// match.
TEST_P(TimingFused, StopResumeTimingBitExact) {
  const SynthProgram P = synthProgram();
  const MachineConfig M;
  constexpr uint64_t KStop = 7;

  fsim::Interpreter Interp(P.Mod, P.InitialMemory);
  CacheModel RefL2(M.L2);
  CoreTiming RefTiming(M.Leading, &RefL2, M.L2.LatencyCycles,
                       M.MemoryLatencyCycles);
  RefRecorder RefObs(RefTiming, Interp, KStop);

  exec::ThreadedBackend Backend(P.Mod, P.InitialMemory);
  CacheModel FusedL2(M.L2);
  CoreTiming FusedTiming(M.Leading, &FusedL2, M.L2.LatencyCycles,
                         M.MemoryLatencyCycles);
  FusedRecorder Policy(FusedTiming, Backend, KStop);

  uint64_t Stops = 0;
  for (;;) {
    const fsim::StopReason RefReason = Interp.runWith(AllFuel, RefObs);
    const uint64_t Before = Backend.instructionsRetired();
    const fsim::StopReason FusedReason = Backend.runTimed(AllFuel, Policy);
    FusedTiming.addInstructions(Backend.instructionsRetired() - Before);

    ASSERT_EQ(RefReason, FusedReason) << "stop " << Stops;
    ASSERT_EQ(Interp.instructionsRetired(), Backend.instructionsRetired())
        << "stop " << Stops;
    ASSERT_EQ(RefTiming.cycles(), FusedTiming.cycles()) << "stop " << Stops;
    if (RefReason == fsim::StopReason::Halted)
      break;
    ASSERT_EQ(RefReason, fsim::StopReason::Stopped);
    ++Stops;
  }
  EXPECT_GT(Stops, 3u) << "stop hook never fired";
  ASSERT_EQ(RefObs.Events.size(), Policy.Events.size());
  for (size_t I = 0; I < RefObs.Events.size(); ++I)
    ASSERT_EQ(RefObs.Events[I], Policy.Events[I])
        << "first divergence at event " << I;
  EXPECT_EQ(Interp.memory(), Backend.memory());
}

// The superscalar baseline (Figs. 7-8's B bars) is cycle-identical across
// all three tiers, both to completion and under an instruction cap.
TEST_P(TimingFused, BaselineCyclesTierInvariant) {
  const SynthProgram P = synthProgram();
  const MachineConfig M;
  for (const uint64_t Cap : {0ull, 50021ull}) {
    const uint64_t Ref = simulateSuperscalarBaseline(P, M, Cap);
    EXPECT_EQ(Ref,
              simulateSuperscalarBaseline(P, M, Cap, ExecTier::Threaded))
        << "cap " << Cap;
    EXPECT_EQ(Ref,
              simulateSuperscalarBaseline(P, M, Cap, ExecTier::TimingFused))
        << "cap " << Cap;
  }
}

namespace {

/// The Fig. 7 short-run control configuration (the MsspGoldenTest one).
MsspConfig fig7Config() {
  MsspConfig Cfg;
  Cfg.Control.MonitorPeriod = 1000;
  Cfg.Control.EnableEviction = true;
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 100000;
  return Cfg;
}

void expectStatsEq(const core::ControlStats &A, const core::ControlStats &B,
                   const std::string &Tag) {
  EXPECT_EQ(A.Branches, B.Branches) << Tag;
  EXPECT_EQ(A.LastInstRet, B.LastInstRet) << Tag;
  EXPECT_EQ(A.CorrectSpecs, B.CorrectSpecs) << Tag;
  EXPECT_EQ(A.IncorrectSpecs, B.IncorrectSpecs) << Tag;
  EXPECT_EQ(A.DeployRequests, B.DeployRequests) << Tag;
  EXPECT_EQ(A.RevokeRequests, B.RevokeRequests) << Tag;
  EXPECT_EQ(A.SuppressedRequests, B.SuppressedRequests) << Tag;
  EXPECT_EQ(A.Evictions, B.Evictions) << Tag;
  EXPECT_EQ(A.Revisits, B.Revisits) << Tag;
  EXPECT_EQ(A.EventsConsumed, B.EventsConsumed) << Tag;
}

void expectResultsEq(const MsspResult &A, const MsspResult &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.TotalCycles, B.TotalCycles) << Tag;
  EXPECT_EQ(A.Tasks, B.Tasks) << Tag;
  EXPECT_EQ(A.TaskSquashes, B.TaskSquashes) << Tag;
  EXPECT_EQ(A.MasterInstructions, B.MasterInstructions) << Tag;
  EXPECT_EQ(A.CheckerInstructions, B.CheckerInstructions) << Tag;
  EXPECT_EQ(A.OptRequests, B.OptRequests) << Tag;
  EXPECT_EQ(A.Regenerations, B.Regenerations) << Tag;
  EXPECT_EQ(A.DistillCacheHits, B.DistillCacheHits) << Tag;
  EXPECT_EQ(A.DistillCacheMisses, B.DistillCacheMisses) << Tag;
  EXPECT_EQ(A.MasterBranchMispredicts, B.MasterBranchMispredicts) << Tag;
  expectStatsEq(A.Controller, B.Controller, Tag + "/branch-ctrl");
  expectStatsEq(A.ValueController, B.ValueController, Tag + "/value-ctrl");
}

MsspResult runMsspTier(const SynthProgram &Program, MsspConfig Cfg,
                       ExecTier Tier) {
  Cfg.Tier = Tier;
  MsspSimulator Sim(Program, Cfg);
  return Sim.run();
}

} // namespace

// The full MSSP simulation -- timing protocol, controller decisions,
// distillation requests, squashes, commit times -- is bit-identical under
// the fused tier on every suite module.
TEST_P(TimingFused, MsspResultsBitExactAcrossTiers) {
  const SynthProgram P =
      synthesize(makeSynthSpecFor(profileByName(GetParam()), TestIterations));
  const MsspResult Ref = runMsspTier(P, fig7Config(), ExecTier::Reference);
  expectResultsEq(runMsspTier(P, fig7Config(), ExecTier::TimingFused), Ref,
                  GetParam() + "/fused");
  expectResultsEq(runMsspTier(P, fig7Config(), ExecTier::Threaded), Ref,
                  GetParam() + "/threaded");
}

// Value speculation routes checker loads (with their completed-instruction
// counts) into the value-invariance controller; the fused tier's Done
// reconstruction must leave its decisions bit-identical too.
TEST(TimingFusedMssp, ValueSpeculationBitExact) {
  MsspConfig Cfg = fig7Config();
  Cfg.EnableValueSpeculation = true;
  Cfg.ValueControl = Cfg.Control;
  const SynthProgram P =
      synthesize(makeSynthSpecFor(profileByName("gcc"), 10000));
  expectResultsEq(runMsspTier(P, Cfg, ExecTier::TimingFused),
                  runMsspTier(P, Cfg, ExecTier::Reference), "gcc-vs/fused");
}

// Without IncrementalDigest the fused tier has no statically dispatched
// loop to fuse into; it must fall back to the legacy virtual path and
// still produce identical results.
TEST(TimingFusedMssp, LegacyFallbackBitExact) {
  MsspConfig Cfg = fig7Config();
  Cfg.FastPath.IncrementalDigest = false;
  const SynthProgram P =
      synthesize(makeSynthSpecFor(profileByName("bzip2"), 10000));
  expectResultsEq(runMsspTier(P, Cfg, ExecTier::TimingFused),
                  runMsspTier(P, Cfg, ExecTier::Reference),
                  "bzip2/fused-legacy");
}

// Squash-heavy regime (open-loop control keeps misspeculating): restores
// and post-squash resumes under the fused tier stay bit-identical.
TEST(TimingFusedMssp, SquashHeavyBitExact) {
  MsspConfig Cfg = fig7Config();
  Cfg.Control.EnableEviction = false;
  const SynthProgram P =
      synthesize(makeSynthSpecFor(profileByName("bzip2"), 10000));
  expectResultsEq(runMsspTier(P, Cfg, ExecTier::TimingFused),
                  runMsspTier(P, Cfg, ExecTier::Reference),
                  "bzip2/fused-openloop");
}

namespace {

std::vector<std::string> suiteNames() {
  std::vector<std::string> Names;
  for (const BenchmarkProfile &P : suiteProfiles())
    Names.push_back(P.Name);
  return Names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TimingFused,
                         ::testing::ValuesIn(suiteNames()),
                         [](const auto &Info) { return Info.param; });

//===- tests/mssp/MsspProtocolTest.cpp ------------------------------------===//
//
// Protocol-level MSSP tests: determinism, checkpoint-buffer back-pressure,
// task-size accounting, and the correlated-misspeculation folding of
// Sec. 4.3.
//
//===----------------------------------------------------------------------===//

#include "mssp/MsspSimulator.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

SynthProgram makeProgram(uint64_t Iterations, double FlipShare) {
  SynthSpec Spec;
  Spec.Name = "protocol";
  Spec.Seed = 99;
  Spec.Iterations = Iterations;
  SynthRegion Region;
  SynthSite A, B, C;
  A.Behavior = BehaviorSpec::fixed(0.9995);
  B.Behavior = BehaviorSpec::fixed(0.0005);
  C.Behavior = FlipShare > 0
                   ? BehaviorSpec::flipAt(0.9995, 0.0005,
                                          static_cast<uint64_t>(
                                              Iterations * FlipShare))
                   : BehaviorSpec::fixed(0.9995);
  Region.Sites = {A, B, C};
  Spec.Regions = {Region};
  return synthesize(Spec);
}

MsspConfig fastConfig() {
  MsspConfig Cfg;
  Cfg.Control.MonitorPeriod = 1000;
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 50000;
  return Cfg;
}

} // namespace

TEST(MsspProtocolTest, ResultsAreDeterministic) {
  auto Run = [] {
    SynthProgram P = makeProgram(20000, 0.4);
    MsspSimulator Sim(P, fastConfig());
    return Sim.run();
  };
  const MsspResult A = Run();
  const MsspResult B = Run();
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.TaskSquashes, B.TaskSquashes);
  EXPECT_EQ(A.MasterInstructions, B.MasterInstructions);
  EXPECT_EQ(A.Regenerations, B.Regenerations);
  EXPECT_EQ(A.Controller.CorrectSpecs, B.Controller.CorrectSpecs);
}

TEST(MsspProtocolTest, TinyCheckpointBufferStillCorrect) {
  SynthProgram P = makeProgram(20000, 0.4);
  MsspConfig Cfg = fastConfig();
  Cfg.MaxOutstandingTasks = 1; // maximal back-pressure
  MsspSimulator Sim(P, Cfg);
  const MsspResult Tight = Sim.run();

  SynthProgram P2 = makeProgram(20000, 0.4);
  MsspConfig Wide = fastConfig();
  Wide.MaxOutstandingTasks = 64;
  MsspSimulator Sim2(P2, Wide);
  const MsspResult Loose = Sim2.run();

  // Same architectural work; the tight buffer can only cost time.
  EXPECT_EQ(Tight.CheckerInstructions, Loose.CheckerInstructions);
  EXPECT_GE(Tight.TotalCycles, Loose.TotalCycles);
}

TEST(MsspProtocolTest, TaskCountMatchesGranularity) {
  for (unsigned TaskIters : {1u, 5u, 8u}) {
    SynthProgram P = makeProgram(16000, 0.0);
    MsspConfig Cfg = fastConfig();
    Cfg.TaskIterations = TaskIters;
    MsspSimulator Sim(P, Cfg);
    const MsspResult R = Sim.run();
    // Boundary tasks plus the loop-exit segment.
    const uint64_t Expected = 16000 / TaskIters + (16000 % TaskIters ? 1 : 0)
                              + (16000 % TaskIters ? 0 : 1);
    EXPECT_EQ(R.Tasks, Expected) << "task iters " << TaskIters;
  }
}

TEST(MsspProtocolTest, LargerTasksFoldMoreMisspeculations) {
  // Sec. 4.3: several branch misspeculations inside one task = one squash.
  auto SquashesAt = [](unsigned TaskIters) {
    SynthProgram P = makeProgram(40000, 0.2);
    MsspConfig Cfg = fastConfig();
    Cfg.Control.EnableEviction = false; // keep misspeculating
    Cfg.TaskIterations = TaskIters;
    MsspSimulator Sim(P, Cfg);
    return Sim.run().TaskSquashes;
  };
  const uint64_t Small = SquashesAt(1);
  const uint64_t Large = SquashesAt(16);
  EXPECT_GT(Small, Large);
}

TEST(MsspProtocolTest, InstructionCapStopsRun) {
  SynthProgram P = makeProgram(100000, 0.0);
  MsspConfig Cfg = fastConfig();
  Cfg.MaxInstructions = 200000;
  MsspSimulator Sim(P, Cfg);
  const MsspResult R = Sim.run();
  EXPECT_GE(R.CheckerInstructions, 200000u);
  // Stopped near the cap, well before the whole program.
  EXPECT_LT(R.CheckerInstructions, 260000u);
}

TEST(MsspProtocolTest, NoSpeculationConfigNeverRegenerates) {
  // With an impossible selection threshold nothing is ever deployed: MSSP
  // degrades to "master == original" and must still be architecturally
  // correct with zero squashes.
  SynthProgram P = makeProgram(20000, 0.4);
  MsspConfig Cfg = fastConfig();
  Cfg.Control.MonitorPeriod = ~0ull >> 1; // never classified
  MsspSimulator Sim(P, Cfg);
  const MsspResult R = Sim.run();
  EXPECT_EQ(R.Regenerations, 0u);
  EXPECT_EQ(R.TaskSquashes, 0u);
  EXPECT_EQ(R.MasterInstructions, R.CheckerInstructions);
}

TEST(MsspProtocolTest, ReactiveValueSpeculationSurvivesConstantChange) {
  // A region whose value-check bound is invariant at 32, then changes:
  // reactive value control must deploy the constant, squash a bounded
  // number of times when it goes stale, evict it, and keep the program
  // architecturally correct.
  SynthSpec Spec;
  Spec.Name = "vflip";
  Spec.Seed = 31;
  Spec.Iterations = 40000;
  SynthRegion Region;
  SynthSite VC;
  VC.UseValueCheck = true;
  VC.Behavior = BehaviorSpec::fixed(0.7); // branch itself unbiased
  VC.ValueInvariance = 0.999;
  SynthSite Plain;
  Plain.Behavior = BehaviorSpec::fixed(0.9995);
  Region.Sites = {VC, Plain};
  Spec.Regions = {Region};
  SynthProgram P = synthesize(Spec);

  MsspConfig Cfg = fastConfig();
  Cfg.EnableValueSpeculation = true;
  Cfg.ValueControl = Cfg.Control;
  MsspSimulator Sim(P, Cfg);
  const MsspResult R = Sim.run();

  // The value controller classified the bound load...
  EXPECT_GT(R.ValueController.everBiasedCount(), 0u);
  // ...and stale constants cost bounded squashes, not a crashloop.
  EXPECT_LT(R.TaskSquashes, R.Tasks / 10);

  // Architectural correctness end to end.
  SynthProgram Ref = synthesize(Spec);
  fsim::Interpreter Interp(Ref.Mod, Ref.InitialMemory);
  ASSERT_EQ(Interp.run(~0ull >> 1), fsim::StopReason::Halted);
  EXPECT_EQ(R.CheckerInstructions, Interp.instructionsRetired());
}

TEST(MsspProtocolTest, SquashRecoveryKeepsCheckerAuthoritative) {
  // Open loop on a flipping site: heavy squashing, but the checker's
  // instruction stream must be exactly the plain architectural run.
  SynthProgram P = makeProgram(30000, 0.3);
  MsspConfig Cfg = fastConfig();
  Cfg.Control.EnableEviction = false;
  MsspSimulator Sim(P, Cfg);
  const MsspResult R = Sim.run();
  EXPECT_GT(R.TaskSquashes, 100u);

  SynthProgram Ref = makeProgram(30000, 0.3);
  fsim::Interpreter Interp(Ref.Mod, Ref.InitialMemory);
  ASSERT_EQ(Interp.run(~0ull >> 1), fsim::StopReason::Halted);
  EXPECT_EQ(R.CheckerInstructions, Interp.instructionsRetired());
}

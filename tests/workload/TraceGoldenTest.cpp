//===- tests/workload/TraceGoldenTest.cpp ---------------------------------===//
//
// Golden-file regression for the on-disk trace formats: checked-in v1 and
// v2 recordings of gzip/train at a tiny scale, plus their SHA-256 digests.
// Any change to the generator's event stream, either encoder, or the
// digest implementation shows up as a mismatch here.
//
// Regenerating after an intentional format/generator change (from the
// repo root, then update tests/data/golden.sha256 with sha256sum):
//
//   build/tools/specctrl-trace --bench=gzip --input=train \
//     --events-per-billion=100 --site-scale=0.1 \
//     --record=tests/data/golden-gzip-train.v1.sct --trace-format=v1
//   build/tools/specctrl-trace --bench=gzip --input=train \
//     --events-per-billion=100 --site-scale=0.1 \
//     --record=tests/data/golden-gzip-train.v2.sct --trace-format=v2
//
//===----------------------------------------------------------------------===//

#include "workload/TraceFile.h"

#include "support/Sha256.h"
#include "workload/SpecSuite.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace specctrl;
using namespace specctrl::workload;

namespace {

/// The scale the goldens were recorded at (see the header comment).
constexpr SuiteScale GoldenScale{100.0, 0.1};

std::string dataPath(const std::string &Name) {
  return std::string(SPECCTRL_TEST_DATA_DIR) + "/" + Name;
}

std::string readFile(const std::string &Name) {
  std::ifstream IS(dataPath(Name), std::ios::binary);
  EXPECT_TRUE(IS) << "missing golden file " << dataPath(Name);
  std::ostringstream OS;
  OS << IS.rdbuf();
  return OS.str();
}

/// Parses golden.sha256 ("<hex>  <file>" lines, sha256sum format).
std::map<std::string, std::string> readDigests() {
  std::ifstream IS(dataPath("golden.sha256"));
  EXPECT_TRUE(IS) << "missing golden digest file";
  std::map<std::string, std::string> Digests;
  std::string Hex, Name;
  while (IS >> Hex >> Name)
    Digests[Name] = Hex;
  return Digests;
}

std::vector<BranchEvent> drain(TraceFileReader &Reader) {
  std::vector<BranchEvent> All;
  std::vector<BranchEvent> Chunk(257);
  while (const size_t N = Reader.nextBatch(Chunk))
    All.insert(All.end(), Chunk.begin(), Chunk.begin() + N);
  return All;
}

} // namespace

TEST(TraceGoldenTest, Sha256DigestsMatch) {
  const std::map<std::string, std::string> Digests = readDigests();
  ASSERT_EQ(Digests.size(), 2u);
  for (const auto &[Name, Hex] : Digests) {
    const std::string Bytes = readFile(Name);
    ASSERT_FALSE(Bytes.empty());
    EXPECT_EQ(Sha256::hexDigest(Bytes), Hex)
        << Name << " changed on disk (or the digest implementation did)";
  }
}

TEST(TraceGoldenTest, BothFormatsReplayTheGeneratorStream) {
  const WorkloadSpec Spec = makeBenchmark("gzip", GoldenScale);
  std::vector<BranchEvent> Reference;
  {
    TraceGenerator Gen(Spec, Spec.trainInput());
    BranchEvent E;
    while (Gen.next(E))
      Reference.push_back(E);
  }
  ASSERT_EQ(Reference.size(), Spec.TrainEvents);

  for (const char *Name :
       {"golden-gzip-train.v1.sct", "golden-gzip-train.v2.sct"}) {
    std::istringstream IS(readFile(Name));
    TraceFileReader Reader(IS);
    ASSERT_TRUE(Reader.valid()) << Name;
    EXPECT_EQ(Reader.numSites(), Spec.numSites());
    EXPECT_EQ(Reader.totalEvents(), Reference.size());
    EXPECT_EQ(drain(Reader), Reference)
        << Name << ": the generator's stream changed -- regenerate the "
                   "goldens (see this file's header)";
    EXPECT_FALSE(Reader.truncated());
    EXPECT_FALSE(Reader.failed());
  }
}

TEST(TraceGoldenTest, MigrationReproducesGoldenV2Bytes) {
  std::istringstream V1(readFile("golden-gzip-train.v1.sct"));
  const std::string V2 = readFile("golden-gzip-train.v2.sct");
  std::ostringstream Migrated;
  ASSERT_GT(migrateTrace(V1, Migrated), 0u);
  EXPECT_EQ(Migrated.str(), V2);
}

TEST(TraceGoldenTest, CorruptedBlockChecksumRejectedWithClearError) {
  std::string V2 = readFile("golden-gzip-train.v2.sct");
  // Flip a payload byte of the first block: file header (28 bytes) +
  // block header (16 bytes) + a few bytes in.
  ASSERT_GT(V2.size(), 50u);
  V2[28 + 16 + 2] ^= 0x04;

  std::istringstream IS(V2);
  TraceFileReader Reader(IS);
  ASSERT_TRUE(Reader.valid());
  BranchEvent E;
  EXPECT_FALSE(Reader.next(E)) << "event delivered from a corrupt block";
  EXPECT_TRUE(Reader.failed());
  EXPECT_NE(Reader.error().find("checksum"), std::string::npos)
      << "unhelpful error: " << Reader.error();
}

//===- tests/workload/BranchBehaviorTest.cpp ------------------------------===//

#include "workload/BranchBehavior.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::workload;

namespace {

/// Empirical taken-rate of \p Spec over executions [From, To).
double takenRate(const BehaviorSpec &Spec, uint64_t From, uint64_t To,
                 bool GroupOn = true, bool InputFlip = false,
                 uint64_t Seed = 1) {
  Rng R(Seed);
  BehaviorState State;
  uint64_t Taken = 0;
  // Advance hidden state through the skipped prefix (matters for
  // RandomWalk only, but harmless elsewhere).
  for (uint64_t E = 0; E < From; ++E)
    (void)drawOutcome(Spec, E, GroupOn, InputFlip, State, R);
  for (uint64_t E = From; E < To; ++E)
    Taken += drawOutcome(Spec, E, GroupOn, InputFlip, State, R);
  return static_cast<double>(Taken) / static_cast<double>(To - From);
}

} // namespace

TEST(BranchBehaviorTest, FixedBiasRate) {
  EXPECT_NEAR(takenRate(BehaviorSpec::fixed(0.999), 0, 50000), 0.999, 0.001);
  EXPECT_NEAR(takenRate(BehaviorSpec::fixed(0.30), 0, 50000), 0.30, 0.01);
}

TEST(BranchBehaviorTest, FlipAtSwitchesRegimes) {
  const BehaviorSpec S = BehaviorSpec::flipAt(0.999, 0.01, 10000);
  EXPECT_NEAR(takenRate(S, 0, 10000), 0.999, 0.002);
  EXPECT_NEAR(takenRate(S, 10000, 20000), 0.01, 0.005);
}

TEST(BranchBehaviorTest, SoftenDecaysGradually) {
  const BehaviorSpec S = BehaviorSpec::soften(1.0, 0.5, 1000, 2000);
  EXPECT_NEAR(takenRate(S, 0, 1000), 1.0, 1e-9);
  // Right after the change the bias is still strong...
  const double Early = takenRate(S, 1000, 1500);
  // ...and far after it has decayed to the target.
  const double Late = takenRate(S, 20000, 40000);
  EXPECT_GT(Early, 0.85);
  EXPECT_NEAR(Late, 0.5, 0.02);
}

TEST(BranchBehaviorTest, InductionFlipDeterministic) {
  const BehaviorSpec S = BehaviorSpec::inductionFlip(32768);
  Rng R(1);
  BehaviorState State;
  EXPECT_FALSE(drawOutcome(S, 0, true, false, State, R));
  EXPECT_FALSE(drawOutcome(S, 32767, true, false, State, R));
  EXPECT_TRUE(drawOutcome(S, 32768, true, false, State, R));
  EXPECT_TRUE(drawOutcome(S, 1000000, true, false, State, R));
}

TEST(BranchBehaviorTest, PeriodicAlternates) {
  const BehaviorSpec S = BehaviorSpec::periodic(0.99, 0.01, 5000);
  EXPECT_NEAR(takenRate(S, 0, 5000), 0.99, 0.01);
  EXPECT_NEAR(takenRate(S, 5000, 10000), 0.01, 0.01);
  EXPECT_NEAR(takenRate(S, 10000, 15000), 0.99, 0.01);
}

TEST(BranchBehaviorTest, RandomWalkStaysUnbiased) {
  const BehaviorSpec S = BehaviorSpec::randomWalk(0.5, 1000);
  const double Rate = takenRate(S, 0, 100000);
  EXPECT_GT(Rate, 0.15);
  EXPECT_LT(Rate, 0.85);
}

TEST(BranchBehaviorTest, PhaseGroupFollowsSchedule) {
  const BehaviorSpec S = BehaviorSpec::phaseGroup(0, 0.998, 0.03);
  EXPECT_NEAR(takenRate(S, 0, 20000, /*GroupOn=*/true), 0.998, 0.003);
  EXPECT_NEAR(takenRate(S, 0, 20000, /*GroupOn=*/false), 0.03, 0.005);
}

TEST(BranchBehaviorTest, InputDependentFlips) {
  const BehaviorSpec S = BehaviorSpec::inputDependent(0.999);
  EXPECT_NEAR(takenRate(S, 0, 20000, true, /*InputFlip=*/false), 0.999,
              0.002);
  EXPECT_NEAR(takenRate(S, 0, 20000, true, /*InputFlip=*/true), 0.001,
              0.002);
  const BehaviorSpec Soft = BehaviorSpec::inputDependent(0.999, 0.55);
  EXPECT_NEAR(takenRate(Soft, 0, 20000, true, /*InputFlip=*/true), 0.55,
              0.02);
}

TEST(BranchBehaviorTest, ExpectedTakenRateMatchesEmpirical) {
  const struct {
    BehaviorSpec Spec;
    uint64_t Execs;
  } Cases[] = {
      {BehaviorSpec::fixed(0.97), 40000},
      {BehaviorSpec::flipAt(1.0, 0.0, 20000), 40000},
      {BehaviorSpec::periodic(0.9, 0.1, 1000), 40000},
      {BehaviorSpec::inductionFlip(10000), 40000},
  };
  for (const auto &C : Cases) {
    const double Analytic = expectedTakenRate(C.Spec, C.Execs, false);
    const double Empirical = takenRate(C.Spec, 0, C.Execs);
    EXPECT_NEAR(Analytic, Empirical, 0.02)
        << behaviorKindName(C.Spec.Kind);
  }
}

TEST(BranchBehaviorTest, KindNamesAreStable) {
  EXPECT_STREQ(behaviorKindName(BehaviorKind::FixedBias), "fixed");
  EXPECT_STREQ(behaviorKindName(BehaviorKind::InductionFlip),
               "induction-flip");
  EXPECT_STREQ(behaviorKindName(BehaviorKind::InputDependent),
               "input-dependent");
}

//===- tests/workload/TraceReplayFuzzTest.cpp -----------------------------===//
//
// Robustness of trace replay against damaged inputs: truncations, random
// byte flips, and outright garbage must never crash the reader, and the
// events it does deliver must be an exact prefix of the undamaged stream
// (v2 additionally never delivers any event of a damaged block).  All
// randomness is std::mt19937 with fixed seeds, so failures reproduce.
//
//===----------------------------------------------------------------------===//

#include "workload/TraceFile.h"

#include "core/Driver.h"
#include "core/StaticControllers.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace specctrl;
using namespace specctrl::workload;

namespace {

/// Small enough to damage exhaustively, with several v2 blocks.
constexpr uint32_t FuzzBlockEvents = 64;

WorkloadSpec fuzzSpec() {
  WorkloadSpec Spec;
  Spec.Name = "fuzz";
  Spec.Seed = 11;
  Spec.RefEvents = 1000;
  Spec.NumPhases = 2;
  SiteSpec A, B, C;
  A.Behavior = BehaviorSpec::fixed(0.99);
  A.Weight = 3;
  B.Behavior = BehaviorSpec::fixed(0.4);
  B.Weight = 1;
  C.Behavior = BehaviorSpec::fixed(0.7);
  C.Weight = 2;
  Spec.Sites = {A, B, C};
  return Spec;
}

std::vector<BranchEvent> referenceStream(const WorkloadSpec &Spec) {
  std::vector<BranchEvent> All;
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  while (Gen.next(E))
    All.push_back(E);
  return All;
}

std::string recordV1(const WorkloadSpec &Spec) {
  std::ostringstream OS;
  TraceGenerator Gen(Spec, Spec.refInput());
  writeTrace(OS, Gen);
  return OS.str();
}

std::string recordV2(const WorkloadSpec &Spec) {
  std::ostringstream OS;
  TraceGenerator Gen(Spec, Spec.refInput());
  writeTraceV2(OS, Gen, FuzzBlockEvents);
  return OS.str();
}

/// Drains \p Bytes through a reader with an odd-sized chunk buffer,
/// asserting every delivered event matches \p Reference at its index.
/// \p Count receives the number of events delivered (void return so
/// gtest's fatal assertions can be used inside).
void drainCheckingPrefix(const std::string &Bytes,
                         const std::vector<BranchEvent> &Reference,
                         size_t &Count) {
  std::istringstream IS(Bytes);
  TraceFileReader Reader(IS);
  Count = 0;
  if (!Reader.valid())
    return;
  std::vector<BranchEvent> Chunk(257);
  while (const size_t N = Reader.nextBatch(Chunk)) {
    for (size_t I = 0; I < N; ++I) {
      ASSERT_LT(Count, Reference.size()) << "fabricated events past the end";
      ASSERT_EQ(Chunk[I], Reference[Count]) << "diverged at event " << Count;
      ++Count;
    }
  }
  // A short stream must say why it is short.
  if (Count < Reference.size())
    EXPECT_TRUE(Reader.truncated() || Reader.failed());
}

} // namespace

TEST(TraceReplayFuzzTest, TruncationsDeliverExactPrefixes) {
  const WorkloadSpec Spec = fuzzSpec();
  const std::vector<BranchEvent> Reference = referenceStream(Spec);
  for (const std::string &Bytes : {recordV1(Spec), recordV2(Spec)}) {
    const bool V2 = Bytes.compare(0, 4, "SCT2") == 0;
    std::mt19937 Rng(1234);
    std::uniform_int_distribution<size_t> Cut(0, Bytes.size() - 1);
    // Every short length near the start (header truncations) plus a
    // random sample of interior cuts.
    std::vector<size_t> Lengths;
    for (size_t L = 0; L < 40; ++L)
      Lengths.push_back(L);
    for (int I = 0; I < 60; ++I)
      Lengths.push_back(Cut(Rng));
    for (const size_t Len : Lengths) {
      size_t Count = 0;
      drainCheckingPrefix(Bytes.substr(0, Len), Reference, Count);
      if (::testing::Test::HasFatalFailure())
        return;
      EXPECT_LE(Count, Reference.size());
      // v2 rejects damaged blocks whole: anything delivered is a whole
      // number of full blocks (the final block is only partial-sized in
      // the untruncated file, where Count == Reference.size()).
      if (V2 && Count != Reference.size())
        EXPECT_EQ(Count % FuzzBlockEvents, 0u) << "partial block at " << Len;
    }
  }
}

TEST(TraceReplayFuzzTest, ByteFlipsNeverCrashOrFabricate) {
  const WorkloadSpec Spec = fuzzSpec();
  const std::vector<BranchEvent> Reference = referenceStream(Spec);
  const std::string V2 = recordV2(Spec);
  std::mt19937 Rng(99);
  std::uniform_int_distribution<size_t> Pos(0, V2.size() - 1);
  std::uniform_int_distribution<int> Bit(0, 7);
  std::uniform_int_distribution<int> Flips(1, 3);
  for (int Round = 0; Round < 300; ++Round) {
    std::string Damaged = V2;
    for (int F = Flips(Rng); F > 0; --F)
      Damaged[Pos(Rng)] ^= static_cast<char>(1 << Bit(Rng));
    // The reader may reject the header, stop early, or (if the flips
    // cancelled out) deliver everything -- but whatever it delivers must
    // be an exact prefix of the true stream in whole blocks.
    size_t Count = 0;
    drainCheckingPrefix(Damaged, Reference, Count);
    if (::testing::Test::HasFatalFailure())
      return;
    if (Count != Reference.size())
      EXPECT_EQ(Count % FuzzBlockEvents, 0u) << "round " << Round;
  }
}

TEST(TraceReplayFuzzTest, GarbageInputsFailCleanly) {
  std::mt19937 Rng(7);
  std::uniform_int_distribution<int> Byte(0, 255);
  std::uniform_int_distribution<size_t> Len(0, 64);
  for (int Round = 0; Round < 100; ++Round) {
    std::string Garbage(Len(Rng), '\0');
    for (char &C : Garbage)
      C = static_cast<char>(Byte(Rng));
    std::istringstream IS(Garbage);
    TraceFileReader Reader(IS);
    BranchEvent E;
    size_t Count = 0;
    while (Reader.next(E))
      ++Count;
    // Nothing this short parses as a whole valid trace.
    EXPECT_TRUE(!Reader.valid() || Reader.truncated() || Reader.failed() ||
                Count == Reader.totalEvents());
  }
  // A valid magic with a chopped header is still an invalid trace.
  for (const char *Magic : {"SCT1", "SCT2"}) {
    std::istringstream IS(std::string(Magic) + "\x01\x02");
    TraceFileReader Reader(IS);
    EXPECT_FALSE(Reader.valid());
    BranchEvent E;
    EXPECT_FALSE(Reader.next(E));
  }
}

TEST(TraceReplayFuzzTest, CorruptBlockDeliversNothingToObservers) {
  const WorkloadSpec Spec = fuzzSpec();
  std::string V2 = recordV2(Spec);
  // Flip one payload byte inside the first block (past the 28-byte file
  // header and 16-byte block header).
  V2[28 + 16 + 3] ^= 0x10;

  std::istringstream IS(V2);
  TraceFileReader Reader(IS);
  ASSERT_TRUE(Reader.valid());
  core::StaticSelectionController C({false, false, false},
                                    {false, false, false});
  core::ProfileObserver Observer(Spec.numSites());
  core::runTrace(C, Reader, &Observer);
  // The first block is damaged, so not one event reaches the observer.
  EXPECT_EQ(Observer.profile().totalExecutions(), 0u);
  EXPECT_TRUE(Reader.failed());
  EXPECT_NE(Reader.error().find("checksum"), std::string::npos)
      << Reader.error();
}

//===- tests/workload/TraceFileTest.cpp -----------------------------------===//

#include "workload/TraceFile.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace specctrl;
using namespace specctrl::workload;

namespace {

WorkloadSpec tinySpec() {
  WorkloadSpec Spec;
  Spec.Name = "tf";
  Spec.Seed = 4;
  Spec.RefEvents = 20000;
  Spec.NumPhases = 2;
  SiteSpec A, B;
  A.Behavior = BehaviorSpec::fixed(0.99);
  A.Weight = 3;
  B.Behavior = BehaviorSpec::fixed(0.4);
  B.Weight = 1;
  Spec.Sites = {A, B};
  return Spec;
}

} // namespace

TEST(TraceFileTest, RoundTripsBitExactly) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream File;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    ASSERT_EQ(writeTrace(File, Gen), Spec.RefEvents);
  }

  TraceGenerator Reference(Spec, Spec.refInput());
  TraceFileReader Reader(File);
  ASSERT_TRUE(Reader.valid());
  EXPECT_EQ(Reader.numSites(), Spec.numSites());
  EXPECT_EQ(Reader.totalEvents(), Spec.RefEvents);

  BranchEvent FromFile, FromGen;
  uint64_t Count = 0;
  while (Reader.next(FromFile)) {
    ASSERT_TRUE(Reference.next(FromGen));
    ASSERT_EQ(FromFile.Site, FromGen.Site);
    ASSERT_EQ(FromFile.Taken, FromGen.Taken);
    ASSERT_EQ(FromFile.Gap, FromGen.Gap);
    ASSERT_EQ(FromFile.Index, FromGen.Index);
    ASSERT_EQ(FromFile.InstRet, FromGen.InstRet);
    ++Count;
  }
  EXPECT_EQ(Count, Spec.RefEvents);
  EXPECT_FALSE(Reader.truncated());
  EXPECT_FALSE(Reference.next(FromGen));
}

TEST(TraceFileTest, PartiallyConsumedGeneratorRecordsRemainder) {
  const WorkloadSpec Spec = tinySpec();
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  for (int I = 0; I < 5000; ++I)
    ASSERT_TRUE(Gen.next(E));

  std::stringstream File;
  ASSERT_EQ(writeTrace(File, Gen), Spec.RefEvents - 5000);
  TraceFileReader Reader(File);
  ASSERT_TRUE(Reader.valid());
  EXPECT_EQ(Reader.totalEvents(), Spec.RefEvents - 5000);
}

TEST(TraceFileTest, RejectsGarbageHeader) {
  std::stringstream File("this is not a trace");
  TraceFileReader Reader(File);
  EXPECT_FALSE(Reader.valid());
  BranchEvent E;
  EXPECT_FALSE(Reader.next(E));
}

TEST(TraceFileTest, DetectsTruncation) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream File;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    writeTrace(File, Gen);
  }
  // Chop the last few bytes off.
  std::string Bytes = File.str();
  Bytes.resize(Bytes.size() - 6);
  std::stringstream Chopped(Bytes);

  TraceFileReader Reader(Chopped);
  ASSERT_TRUE(Reader.valid());
  BranchEvent E;
  uint64_t Count = 0;
  while (Reader.next(E))
    ++Count;
  EXPECT_LT(Count, Spec.RefEvents);
  EXPECT_TRUE(Reader.truncated());
}

TEST(TraceFileTest, FormatLimitsDocumented) {
  EXPECT_EQ(TraceFileLimits::MaxSite, (1u << 24) - 1);
  EXPECT_EQ(TraceFileLimits::MaxGap, 127u);
}

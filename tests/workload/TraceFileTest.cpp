//===- tests/workload/TraceFileTest.cpp -----------------------------------===//

#include "workload/TraceFile.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace specctrl;
using namespace specctrl::workload;

namespace {

WorkloadSpec tinySpec() {
  WorkloadSpec Spec;
  Spec.Name = "tf";
  Spec.Seed = 4;
  Spec.RefEvents = 20000;
  Spec.NumPhases = 2;
  SiteSpec A, B;
  A.Behavior = BehaviorSpec::fixed(0.99);
  A.Weight = 3;
  B.Behavior = BehaviorSpec::fixed(0.4);
  B.Weight = 1;
  Spec.Sites = {A, B};
  return Spec;
}

} // namespace

TEST(TraceFileTest, RoundTripsBitExactly) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream File;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    ASSERT_EQ(writeTrace(File, Gen), Spec.RefEvents);
  }

  TraceGenerator Reference(Spec, Spec.refInput());
  TraceFileReader Reader(File);
  ASSERT_TRUE(Reader.valid());
  EXPECT_EQ(Reader.numSites(), Spec.numSites());
  EXPECT_EQ(Reader.totalEvents(), Spec.RefEvents);

  BranchEvent FromFile, FromGen;
  uint64_t Count = 0;
  while (Reader.next(FromFile)) {
    ASSERT_TRUE(Reference.next(FromGen));
    ASSERT_EQ(FromFile.Site, FromGen.Site);
    ASSERT_EQ(FromFile.Taken, FromGen.Taken);
    ASSERT_EQ(FromFile.Gap, FromGen.Gap);
    ASSERT_EQ(FromFile.Index, FromGen.Index);
    ASSERT_EQ(FromFile.InstRet, FromGen.InstRet);
    ++Count;
  }
  EXPECT_EQ(Count, Spec.RefEvents);
  EXPECT_FALSE(Reader.truncated());
  EXPECT_FALSE(Reference.next(FromGen));
}

TEST(TraceFileTest, PartiallyConsumedGeneratorRecordsRemainder) {
  const WorkloadSpec Spec = tinySpec();
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  for (int I = 0; I < 5000; ++I)
    ASSERT_TRUE(Gen.next(E));

  std::stringstream File;
  ASSERT_EQ(writeTrace(File, Gen), Spec.RefEvents - 5000);
  TraceFileReader Reader(File);
  ASSERT_TRUE(Reader.valid());
  EXPECT_EQ(Reader.totalEvents(), Spec.RefEvents - 5000);
}

TEST(TraceFileTest, RejectsGarbageHeader) {
  std::stringstream File("this is not a trace");
  TraceFileReader Reader(File);
  EXPECT_FALSE(Reader.valid());
  BranchEvent E;
  EXPECT_FALSE(Reader.next(E));
}

TEST(TraceFileTest, DetectsTruncation) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream File;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    writeTrace(File, Gen);
  }
  // Chop the last few bytes off.
  std::string Bytes = File.str();
  Bytes.resize(Bytes.size() - 6);
  std::stringstream Chopped(Bytes);

  TraceFileReader Reader(Chopped);
  ASSERT_TRUE(Reader.valid());
  BranchEvent E;
  uint64_t Count = 0;
  while (Reader.next(E))
    ++Count;
  EXPECT_LT(Count, Spec.RefEvents);
  EXPECT_TRUE(Reader.truncated());
}

TEST(TraceFileTest, FormatLimitsDocumented) {
  EXPECT_EQ(TraceFileLimits::MaxSite, (1u << 24) - 1);
  EXPECT_EQ(TraceFileLimits::MaxGap, 127u);
}

TEST(TraceFileTest, V2RoundTripsBitExactly) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream File;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    ASSERT_EQ(writeTraceV2(File, Gen, /*BlockEvents=*/512), Spec.RefEvents);
  }

  TraceGenerator Reference(Spec, Spec.refInput());
  TraceFileReader Reader(File);
  ASSERT_TRUE(Reader.valid());
  EXPECT_EQ(Reader.version(), 2u);
  EXPECT_EQ(Reader.numSites(), Spec.numSites());
  EXPECT_EQ(Reader.totalEvents(), Spec.RefEvents);
  EXPECT_EQ(Reader.minGap(), Spec.MinGap);
  EXPECT_EQ(Reader.maxGap(), Spec.MaxGap);

  // Odd-sized chunk buffer so reads straddle block boundaries.
  std::vector<BranchEvent> Chunk(313);
  BranchEvent FromGen;
  uint64_t Count = 0;
  while (const size_t N = Reader.nextBatch(Chunk)) {
    for (size_t I = 0; I < N; ++I) {
      ASSERT_TRUE(Reference.next(FromGen));
      ASSERT_EQ(Chunk[I], FromGen) << "event " << Count;
      ++Count;
    }
  }
  EXPECT_EQ(Count, Spec.RefEvents);
  EXPECT_FALSE(Reader.truncated());
  EXPECT_FALSE(Reader.failed());
  EXPECT_FALSE(Reference.next(FromGen));
}

TEST(TraceFileTest, MigratesV1ToV2PreservingTheStream) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream V1;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    ASSERT_EQ(writeTrace(V1, Gen), Spec.RefEvents);
  }
  std::stringstream V2;
  ASSERT_EQ(migrateTrace(V1, V2), Spec.RefEvents);

  TraceGenerator Reference(Spec, Spec.refInput());
  TraceFileReader Reader(V2);
  ASSERT_TRUE(Reader.valid());
  EXPECT_EQ(Reader.version(), 2u);
  BranchEvent FromFile, FromGen;
  while (Reader.next(FromFile)) {
    ASSERT_TRUE(Reference.next(FromGen));
    ASSERT_EQ(FromFile, FromGen);
  }
  EXPECT_FALSE(Reader.truncated());
  EXPECT_FALSE(Reader.failed());
  EXPECT_FALSE(Reference.next(FromGen));
}

TEST(TraceFileTest, MigrationRefusesTruncatedInput) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream File;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    writeTrace(File, Gen);
  }
  std::string Bytes = File.str();
  Bytes.resize(Bytes.size() - 6);
  std::stringstream Chopped(Bytes), Out;
  EXPECT_EQ(migrateTrace(Chopped, Out), 0u);
}

TEST(TraceFileTest, V2RejectsCorruptedBlockChecksum) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream File;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    writeTraceV2(File, Gen, /*BlockEvents=*/512);
  }
  std::string Bytes = File.str();
  // Flip one payload byte in the second block: 28-byte file header, then
  // walk one whole block frame ({u32, u32, u64 hash, payload}).
  size_t FirstBlock = 28;
  const auto PayloadBytes = [&](size_t Header) {
    return static_cast<size_t>(
        static_cast<uint8_t>(Bytes[Header + 4]) |
        (static_cast<uint8_t>(Bytes[Header + 5]) << 8) |
        (static_cast<uint8_t>(Bytes[Header + 6]) << 16) |
        (static_cast<uint8_t>(Bytes[Header + 7]) << 24));
  };
  const size_t SecondBlock = FirstBlock + 16 + PayloadBytes(FirstBlock);
  ASSERT_LT(SecondBlock + 20, Bytes.size());
  Bytes[SecondBlock + 16 + 3] ^= 0x40;

  std::stringstream Damaged(Bytes);
  TraceFileReader Reader(Damaged);
  ASSERT_TRUE(Reader.valid());
  BranchEvent E;
  uint64_t Count = 0;
  while (Reader.next(E))
    ++Count;
  // The first block replays; not one event of the damaged block does.
  EXPECT_EQ(Count, 512u);
  EXPECT_TRUE(Reader.failed());
  EXPECT_NE(Reader.error().find("checksum"), std::string::npos)
      << Reader.error();
}

TEST(TraceFileTest, V2DetectsTruncationWithoutPartialBlocks) {
  const WorkloadSpec Spec = tinySpec();
  std::stringstream File;
  {
    TraceGenerator Gen(Spec, Spec.refInput());
    writeTraceV2(File, Gen, /*BlockEvents=*/512);
  }
  std::string Bytes = File.str();
  Bytes.resize(Bytes.size() - 6); // cut into the final block
  std::stringstream Chopped(Bytes);

  TraceFileReader Reader(Chopped);
  ASSERT_TRUE(Reader.valid());
  BranchEvent E;
  uint64_t Count = 0;
  while (Reader.next(E))
    ++Count;
  EXPECT_LT(Count, Spec.RefEvents);
  EXPECT_EQ(Count % 512, 0u) << "a partial block was delivered";
  EXPECT_TRUE(Reader.truncated());
}

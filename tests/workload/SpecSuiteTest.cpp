//===- tests/workload/SpecSuiteTest.cpp -----------------------------------===//

#include "workload/SpecSuite.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::workload;

TEST(SpecSuiteTest, TwelveBenchmarksInPaperOrder) {
  const auto &Profiles = suiteProfiles();
  ASSERT_EQ(Profiles.size(), 12u);
  EXPECT_EQ(Profiles.front().Name, "bzip2");
  EXPECT_EQ(Profiles.back().Name, "vpr");
  EXPECT_EQ(profileByName("gcc").PaperTouch, 7943u);
  EXPECT_EQ(profileByName("mcf").PaperBias, 210u);
}

TEST(SpecSuiteTest, ConstructionIsDeterministic) {
  const WorkloadSpec A = makeBenchmark("gap");
  const WorkloadSpec B = makeBenchmark("gap");
  ASSERT_EQ(A.numSites(), B.numSites());
  for (SiteId S = 0; S < A.numSites(); ++S) {
    EXPECT_EQ(A.Sites[S].Weight, B.Sites[S].Weight);
    EXPECT_EQ(static_cast<int>(A.Sites[S].Behavior.Kind),
              static_cast<int>(B.Sites[S].Behavior.Kind));
    EXPECT_EQ(A.Sites[S].Behavior.BiasA, B.Sites[S].Behavior.BiasA);
  }
}

TEST(SpecSuiteTest, SiteCountsScaleWithProfile) {
  const SuiteScale Scale; // default 0.25
  for (const BenchmarkProfile &P : suiteProfiles()) {
    const WorkloadSpec Spec = makeBenchmark(P, Scale);
    const double Expected = P.PaperTouch * Scale.SiteScale;
    EXPECT_NEAR(Spec.numSites(), Expected, Expected * 0.1 + 41)
        << P.Name;
    EXPECT_GT(Spec.RefEvents, 1000000u) << P.Name;
  }
}

TEST(SpecSuiteTest, BiasedShareCalibratedToPaperSpecShare) {
  // Calibration targets the *reactive model's achieved* "% spec", which
  // sits below the analytic whole-run-biased share (monitor burn) and
  // excludes changing-site phases; here we check the analytic share is in
  // a sane band around the paper value and preserves the suite ordering.
  std::vector<double> Shares;
  for (const char *Name : {"crafty", "bzip2", "gcc", "vortex"}) {
    const BenchmarkProfile &P = profileByName(Name);
    const WorkloadSpec Spec = makeBenchmark(P);
    const double Share = Spec.expectedBiasedShare(Spec.refInput(), 0.99);
    EXPECT_GT(Share, P.PaperSpecShare * 0.3) << Name;
    EXPECT_LT(Share, std::min(0.95, P.PaperSpecShare * 1.6)) << Name;
    Shares.push_back(Share);
  }
  // Paper ordering: crafty < bzip2 < gcc <= vortex-ish.
  EXPECT_LT(Shares[0], Shares[1]);
  EXPECT_LT(Shares[1], Shares[2]);
}

TEST(SpecSuiteTest, ChangingSitesArePresent) {
  const WorkloadSpec Spec = makeBenchmark("gap");
  unsigned Flips = 0, Periodic = 0, Induction = 0;
  for (const SiteSpec &S : Spec.Sites) {
    Flips += S.Behavior.Kind == BehaviorKind::FlipAt ||
             S.Behavior.Kind == BehaviorKind::Soften;
    Periodic += S.Behavior.Kind == BehaviorKind::Periodic;
    Induction += S.Behavior.Kind == BehaviorKind::InductionFlip;
  }
  // gap: Table 3 reports 167 evicted statics; at 1/4 scale ~42.
  EXPECT_NEAR(Flips, 42, 6);
  EXPECT_GE(Periodic, 1u);
  EXPECT_GE(Induction, 1u);
  // Fig. 3 needs changing sites that stay biased >= 20k executions.
  unsigned LateChangers = 0;
  for (const SiteSpec &S : Spec.Sites)
    if ((S.Behavior.Kind == BehaviorKind::FlipAt ||
         S.Behavior.Kind == BehaviorKind::Soften) &&
        S.Behavior.ChangeAt >= 20000)
      ++LateChangers;
  EXPECT_GE(LateChangers, 5u);
}

TEST(SpecSuiteTest, VortexHasCorrelatedGroups) {
  const WorkloadSpec Spec = makeBenchmark("vortex");
  EXPECT_EQ(Spec.numGroups(), 8u);
  unsigned GroupSites = 0;
  for (const SiteSpec &S : Spec.Sites)
    GroupSites += S.Behavior.Kind == BehaviorKind::PhaseGroup;
  EXPECT_GE(GroupSites, 20u);
  // Every group schedule has both regimes.
  for (unsigned G = 0; G < Spec.numGroups(); ++G) {
    bool SawOn = false, SawOff = false;
    for (unsigned P = 0; P < Spec.NumPhases; ++P)
      (Spec.groupOnInPhase(G, P) ? SawOn : SawOff) = true;
    EXPECT_TRUE(SawOn) << "group " << G;
    EXPECT_TRUE(SawOff) << "group " << G;
  }
}

TEST(SpecSuiteTest, FragileBenchmarksHaveInputDependence) {
  unsigned CraftyInputDep = 0, EonInputDep = 0;
  for (const SiteSpec &S : makeBenchmark("crafty").Sites)
    CraftyInputDep += S.Behavior.Kind == BehaviorKind::InputDependent;
  for (const SiteSpec &S : makeBenchmark("eon").Sites)
    EonInputDep += S.Behavior.Kind == BehaviorKind::InputDependent;
  EXPECT_GT(CraftyInputDep, EonInputDep * 3);
}

TEST(SpecSuiteTest, TrainAndRefInputsDiverge) {
  const WorkloadSpec Spec = makeBenchmark("crafty");
  const InputConfig Ref = Spec.refInput();
  const InputConfig Train = Spec.trainInput();
  unsigned DifferentBits = 0, GatedDiffs = 0, Gated = 0;
  for (SiteId S = 0; S < Spec.numSites(); ++S) {
    DifferentBits += Ref.parameterBit(S) != Train.parameterBit(S);
    if (Spec.Sites[S].InputGated) {
      ++Gated;
      GatedDiffs += Ref.covers(S) != Train.covers(S);
    }
  }
  // Parameter bits are independent bits: ~half differ.
  EXPECT_NEAR(DifferentBits, Spec.numSites() / 2.0, Spec.numSites() * 0.1);
  EXPECT_GT(Gated, 10u);
  EXPECT_GT(GatedDiffs, 0u);
}

TEST(SpecSuiteTest, MakeSuiteBuildsAll) {
  SuiteScale Small;
  Small.EventsPerBillion = 1e4; // keep the test fast
  const auto Suite = makeSuite(Small);
  ASSERT_EQ(Suite.size(), 12u);
  for (const WorkloadSpec &Spec : Suite)
    EXPECT_GT(Spec.numSites(), 30u) << Spec.Name;
}

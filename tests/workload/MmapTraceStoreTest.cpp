//===- tests/workload/MmapTraceStoreTest.cpp ------------------------------===//
//
// The mmap trace store's contract: an MmapReplaySource streams events
// bit-identical to TraceFileReader over the same file -- across the whole
// benchmark suite, both inputs, packed and page-aligned layouts, and any
// consumer chunk size; mapped bytes stay untrusted until their block's
// first-touch checksum + checked decode passes, so corruption and
// truncation are rejected whole-block with zero fabricated events; the
// SWAR trusted decoder is bit-identical to the scalar baseline; and the
// registry shares one mapping per file.
//
//===----------------------------------------------------------------------===//

#include "workload/MmapTraceStore.h"

#include "workload/SpecSuite.h"
#include "workload/TraceGenerator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <span>
#include <vector>

using namespace specctrl;
using namespace specctrl::workload;

namespace {

/// Small enough that the 12-benchmark x 2-input sweep runs in seconds,
/// large enough for multi-block traces (matches TraceArenaTest).
constexpr SuiteScale TestScale{3.0e3, 0.1};

constexpr size_t TestBatches[] = {DefaultBatchEvents, 257};

/// A scratch directory removed on destruction.
class TempDir {
public:
  TempDir() {
    Path = std::filesystem::temp_directory_path() /
           ("specctrl-mmap-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
  std::filesystem::path Path;
};

/// Records (Spec, Input) to \p Path as SCT2, optionally page-aligned.
void recordTrace(const std::string &Path, const WorkloadSpec &Spec,
                 const InputConfig &Input, uint32_t AlignBytes) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(OS.is_open());
  TraceGenerator Gen(Spec, Input);
  ASSERT_EQ(writeTraceV2(OS, Gen, TraceV2BlockEvents, AlignBytes),
            Input.Events);
}

/// Drains \p Source in chunks of \p Batch and compares every event -- all
/// fields -- against TraceFileReader over the same file.
void expectFileIdentity(MmapReplaySource &Source, const std::string &Path,
                        size_t Batch, uint64_t WantEvents) {
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.is_open());
  TraceFileReader Reference(In);
  ASSERT_TRUE(Reference.valid());
  std::vector<BranchEvent> Chunk(Batch);
  BranchEvent Expected;
  uint64_t Count = 0;
  while (const size_t N = Source.nextBatch(Chunk)) {
    for (size_t I = 0; I < N; ++I) {
      ASSERT_TRUE(Reference.next(Expected))
          << Path << ": mmap stream too long at event " << Count;
      ASSERT_EQ(Chunk[I], Expected)
          << Path << " batch=" << Batch << " event " << Count;
      ++Count;
    }
  }
  EXPECT_FALSE(Source.failed()) << Source.error();
  EXPECT_FALSE(Reference.next(Expected))
      << Path << ": mmap stream too short at event " << Count;
  EXPECT_EQ(Count, WantEvents);
}

} // namespace

TEST(MmapTraceStoreTest, ReplayMatchesFileReaderAcrossSuiteAndLayouts) {
  TempDir Dir;
  MmapTraceStore Store;
  for (const BenchmarkProfile &P : suiteProfiles()) {
    const WorkloadSpec Spec = makeBenchmark(P, TestScale);
    for (const InputConfig &Input : {Spec.refInput(), Spec.trainInput()})
      for (const uint32_t Align : {0u, TraceV2AlignBytes}) {
        const std::string Path =
            (Dir.Path / (Spec.Name + "-" + Input.Name +
                         (Align ? "-aligned" : "-packed") + ".sct2"))
                .string();
        recordTrace(Path, Spec, Input, Align);
        // Both cursors first (so the second open finds the live mapping),
        // then replay each at its chunk size.
        std::vector<std::unique_ptr<MmapReplaySource>> Cursors;
        for (size_t C = 0; C < std::size(TestBatches); ++C) {
          std::string Error;
          Cursors.push_back(Store.openCursor(Path, &Error));
          ASSERT_TRUE(Cursors.back()) << Error;
        }
        for (size_t C = 0; C < std::size(TestBatches); ++C)
          expectFileIdentity(*Cursors[C], Path, TestBatches[C],
                             Input.Events);
      }
  }
  const MmapTraceStoreStats S = Store.stats();
  EXPECT_EQ(S.Failures, 0u);
  EXPECT_GT(S.Mmaps, 0u);
  EXPECT_GT(S.Opens, S.Mmaps); // repeat opens shared the mapping
}

TEST(MmapTraceStoreTest, PerEventNextMatchesGenerator) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;
  const std::string Path = (Dir.Path / "gzip.sct2").string();
  recordTrace(Path, Spec, Input, TraceV2AlignBytes);

  std::string Error;
  const std::unique_ptr<MmapReplaySource> Source =
      MmapTraceStore().openCursor(Path, &Error);
  ASSERT_TRUE(Source) << Error;
  TraceGenerator Reference(Spec, Input);
  BranchEvent Got, Expected;
  uint64_t Count = 0;
  while (Source->next(Got)) {
    ASSERT_TRUE(Reference.next(Expected));
    ASSERT_EQ(Got, Expected) << "event " << Count;
    ++Count;
  }
  EXPECT_FALSE(Source->failed()) << Source->error();
  EXPECT_FALSE(Reference.next(Expected));
  EXPECT_EQ(Count, Input.Events);
}

TEST(MmapTraceStoreTest, ResetRestartsTheStreamAndRunsVerifiedPath) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;
  const std::string Path = (Dir.Path / "gzip.sct2").string();
  recordTrace(Path, Spec, Input, TraceV2AlignBytes);

  std::string Error;
  MmapTraceStore Store;
  const std::unique_ptr<MmapReplaySource> Source =
      Store.openCursor(Path, &Error);
  ASSERT_TRUE(Source) << Error;
  // First pass verifies every block (checked decode); the second pass
  // replays entirely on the trusted SWAR path.  Both must be identical to
  // the file reader.
  expectFileIdentity(*Source, Path, DefaultBatchEvents, Input.Events);
  EXPECT_TRUE(Source->trace().fullyVerified());
  Source->reset();
  expectFileIdentity(*Source, Path, 257, Input.Events);
}

TEST(MmapTraceStoreTest, MappingIsSharedAndIndexIsLean) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;
  const std::string Path = (Dir.Path / "gzip.sct2").string();
  recordTrace(Path, Spec, Input, TraceV2AlignBytes);

  MmapTraceStore Store;
  std::string Error;
  const std::unique_ptr<MmapReplaySource> A = Store.openCursor(Path, &Error);
  const std::unique_ptr<MmapReplaySource> B = Store.openCursor(Path, &Error);
  ASSERT_TRUE(A);
  ASSERT_TRUE(B);
  EXPECT_EQ(&A->trace(), &B->trace()); // one mapping, two cursors

  // Lockstep cursors over the shared mapping see identical streams.
  std::vector<BranchEvent> ChunkA(257), ChunkB(257);
  while (true) {
    const size_t NA = A->nextBatch(ChunkA);
    const size_t NB = B->nextBatch(ChunkB);
    ASSERT_EQ(NA, NB);
    if (NA == 0)
      break;
    for (size_t I = 0; I < NA; ++I)
      ASSERT_EQ(ChunkA[I], ChunkB[I]);
  }

  const MmapTraceStoreStats S = Store.stats();
  EXPECT_EQ(S.Opens, 2u);
  EXPECT_EQ(S.Mmaps, 1u);
  EXPECT_EQ(S.MappedBytes, std::filesystem::file_size(Path));
  EXPECT_EQ(A->trace().totalEvents(), Input.Events);
  EXPECT_EQ(A->trace().numSites(), Spec.numSites());
  EXPECT_GT(A->trace().numBlocks(), 1u);
}

TEST(MmapTraceStoreTest, PayloadCorruptionIsRejectedWholeBlock) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;
  const std::string Path = (Dir.Path / "gzip.sct2").string();
  recordTrace(Path, Spec, Input, TraceV2AlignBytes);

  // Flip one byte in the final block's payload: the mapped file still
  // opens (structure intact), but the cursor must fail at that block after
  // delivering only the preceding -- still verified -- events, all
  // bit-identical to the pristine stream.
  {
    std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.is_open());
    F.seekp(-1, std::ios::end);
    const char Flip = static_cast<char>(F.peek() ^ 0x40);
    F.write(&Flip, 1);
  }

  std::string Error;
  const std::unique_ptr<MmapReplaySource> Source =
      MmapTraceStore().openCursor(Path, &Error);
  ASSERT_TRUE(Source) << Error;
  TraceGenerator Reference(Spec, Input);
  std::vector<BranchEvent> Chunk(DefaultBatchEvents);
  BranchEvent Expected;
  uint64_t Count = 0;
  while (const size_t N = Source->nextBatch(Chunk)) {
    for (size_t I = 0; I < N; ++I) {
      ASSERT_TRUE(Reference.next(Expected));
      ASSERT_EQ(Chunk[I], Expected) << "event " << Count;
      ++Count;
    }
  }
  EXPECT_TRUE(Source->failed());
  EXPECT_NE(Source->error().find("checksum"), std::string::npos)
      << Source->error();
  EXPECT_LT(Count, Input.Events); // the corrupt block delivered nothing
  BranchEvent E;
  EXPECT_FALSE(Source->next(E)); // and the cursor stays failed
}

TEST(MmapTraceStoreTest, TruncatedFileIsRejectedAtOpen) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;
  const std::string Path = (Dir.Path / "gzip.sct2").string();
  recordTrace(Path, Spec, Input, TraceV2AlignBytes);

  // Chop the file mid-block: the structural index walk sees missing
  // events and refuses to map (a truncated trace can never be partially
  // served by the store -- the file reader handles resumable streams).
  const auto Full = std::filesystem::file_size(Path);
  std::filesystem::resize_file(Path, Full - Full / 3);
  std::string Error;
  EXPECT_EQ(MmapTraceStore().open(Path, &Error), nullptr);
  EXPECT_FALSE(Error.empty());
}

TEST(MmapTraceStoreTest, ZeroedEventCountDoesNotBecomeAPad) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;
  const std::string Path = (Dir.Path / "gzip.sct2").string();
  recordTrace(Path, Spec, Input, TraceV2AlignBytes);

  // Zero the second block's event count (the first frame after the first
  // aligned boundary).  Without the pad-frame sentinel check this would
  // silently skip a real block; it must instead fail the open.
  {
    std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.is_open());
    F.seekp(TraceV2AlignBytes, std::ios::beg);
    const char Zeros[4] = {0, 0, 0, 0};
    F.write(Zeros, 4);
  }
  std::string Error;
  EXPECT_EQ(MmapTraceStore().open(Path, &Error), nullptr);
  EXPECT_FALSE(Error.empty());
}

TEST(MmapTraceStoreTest, NonTraceFilesAreRejected) {
  TempDir Dir;
  const std::string Garbage = (Dir.Path / "garbage.sct2").string();
  {
    std::ofstream OS(Garbage, std::ios::binary);
    OS << "this is not a trace but is long enough to pass the size check";
  }
  std::string Error;
  MmapTraceStore Store;
  EXPECT_EQ(Store.open(Garbage, &Error), nullptr);
  EXPECT_NE(Error.find("SCT2"), std::string::npos) << Error;
  EXPECT_EQ(Store.open((Dir.Path / "missing.sct2").string(), &Error),
            nullptr);
  EXPECT_EQ(Store.stats().Failures, 2u);
}

TEST(MmapTraceStoreTest, SwarDecoderMatchesScalarBaseline) {
  // Exercise every varint shape: tiny deltas (1-byte), suite-scale site
  // counts (2-byte), and a wide-site workload forcing >= 3-byte deltas,
  // at ragged block sizes that leave scalar tails after the SWAR loop.
  std::mt19937_64 Rng(20050313);
  for (const uint32_t NumSites : {3u, 300u, 40000u, 3000000u}) {
    for (const uint32_t EventCount : {1u, 2u, 7u, 64u, 4096u}) {
      std::vector<BranchEvent> Original(EventCount);
      uint32_t Site = 0;
      for (uint32_t I = 0; I < EventCount; ++I) {
        Site = static_cast<uint32_t>(Rng() % NumSites);
        Original[I].Site = Site;
        Original[I].Taken = (Rng() & 1) != 0;
        Original[I].Gap = static_cast<uint32_t>(Rng() % 128);
      }
      // Encode through the writer, then decode the lone block's payload
      // with both trusted decoders.
      std::ostringstream OS(std::ios::binary);
      TraceWriterV2 Writer(OS, NumSites, EventCount, 0, 127, EventCount);
      ASSERT_TRUE(Writer.append(
          std::span<const BranchEvent>(Original.data(), EventCount)));
      ASSERT_TRUE(Writer.finish());
      const std::string File = OS.str();
      const uint8_t *Payload =
          reinterpret_cast<const uint8_t *>(File.data()) +
          TraceV2HeaderBytes + TraceV2FrameBytes;
      const size_t PayloadBytes =
          File.size() - TraceV2HeaderBytes - TraceV2FrameBytes;

      std::vector<BranchEvent> Swar(EventCount), Scalar(EventCount);
      uint64_t IndexA = 1000, InstA = 2000; // nonzero starting counters
      uint64_t IndexB = 1000, InstB = 2000;
      decodeTraceBlockPayloadTrusted(Payload, PayloadBytes, EventCount,
                                     IndexA, InstA, Swar.data());
      decodeTraceBlockPayloadTrustedScalar(Payload, PayloadBytes, EventCount,
                                           IndexB, InstB, Scalar.data());
      EXPECT_EQ(IndexA, IndexB);
      EXPECT_EQ(InstA, InstB);
      for (uint32_t I = 0; I < EventCount; ++I) {
        ASSERT_EQ(Swar[I], Scalar[I])
            << "sites=" << NumSites << " n=" << EventCount << " event " << I;
        ASSERT_EQ(Swar[I].Site, Original[I].Site);
      }
    }
  }
}

TEST(MmapTraceStoreTest, AlignedLayoutStartsBlocksOnPageBoundaries) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;
  const std::string Path = (Dir.Path / "gzip.sct2").string();
  recordTrace(Path, Spec, Input, TraceV2AlignBytes);

  // Walk the frames directly: every non-pad frame must start on a page
  // boundary (that is the layout contract madvise relies on).
  std::ifstream In(Path, std::ios::binary);
  std::vector<char> Bytes((std::istreambuf_iterator<char>(In)),
                          std::istreambuf_iterator<char>());
  const auto U32 = [&](size_t Pos) {
    return static_cast<uint32_t>(static_cast<uint8_t>(Bytes[Pos])) |
           (static_cast<uint32_t>(static_cast<uint8_t>(Bytes[Pos + 1])) << 8) |
           (static_cast<uint32_t>(static_cast<uint8_t>(Bytes[Pos + 2]))
            << 16) |
           (static_cast<uint32_t>(static_cast<uint8_t>(Bytes[Pos + 3]))
            << 24);
  };
  size_t Pos = TraceV2HeaderBytes;
  size_t RealBlocks = 0;
  while (Pos + TraceV2FrameBytes <= Bytes.size()) {
    const uint32_t Events = U32(Pos);
    const uint32_t PayloadBytes = U32(Pos + 4);
    if (Events != 0) {
      EXPECT_EQ(Pos % TraceV2AlignBytes, 0u) << "block at offset " << Pos;
      ++RealBlocks;
    }
    Pos += TraceV2FrameBytes + PayloadBytes;
  }
  EXPECT_EQ(Pos, Bytes.size());
  EXPECT_GT(RealBlocks, 1u);
}

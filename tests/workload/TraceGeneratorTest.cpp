//===- tests/workload/TraceGeneratorTest.cpp ------------------------------===//

#include "workload/TraceGenerator.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::workload;

namespace {

WorkloadSpec makeTinySpec() {
  WorkloadSpec Spec;
  Spec.Name = "tiny";
  Spec.Seed = 99;
  Spec.RefEvents = 50000;
  Spec.TrainEvents = 20000;
  Spec.NumPhases = 4;
  Spec.MinGap = 1;
  Spec.MaxGap = 8;
  SiteSpec Hot;
  Hot.Behavior = BehaviorSpec::fixed(0.999);
  Hot.Weight = 8.0;
  SiteSpec Cold;
  Cold.Behavior = BehaviorSpec::fixed(0.4);
  Cold.Weight = 1.0;
  SiteSpec Gated;
  Gated.Behavior = BehaviorSpec::fixed(0.95);
  Gated.Weight = 1.0;
  Gated.InputGated = true;
  SiteSpec Phased;
  Phased.Behavior = BehaviorSpec::fixed(0.5);
  Phased.Weight = 2.0;
  Phased.PhaseMask = 0x1; // first phase only
  Spec.Sites = {Hot, Cold, Gated, Phased};
  return Spec;
}

} // namespace

TEST(TraceGeneratorTest, GeneratesExactlyRunLength) {
  const WorkloadSpec Spec = makeTinySpec();
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  uint64_t Count = 0;
  while (Gen.next(E))
    ++Count;
  EXPECT_EQ(Count, Spec.RefEvents);
  EXPECT_EQ(Gen.eventsGenerated(), Spec.RefEvents);
  EXPECT_FALSE(Gen.next(E));
}

TEST(TraceGeneratorTest, DeterministicAcrossInstances) {
  const WorkloadSpec Spec = makeTinySpec();
  TraceGenerator A(Spec, Spec.refInput());
  TraceGenerator B(Spec, Spec.refInput());
  BranchEvent EA, EB;
  for (int I = 0; I < 5000; ++I) {
    ASSERT_TRUE(A.next(EA));
    ASSERT_TRUE(B.next(EB));
    ASSERT_EQ(EA.Site, EB.Site);
    ASSERT_EQ(EA.Taken, EB.Taken);
    ASSERT_EQ(EA.Gap, EB.Gap);
    ASSERT_EQ(EA.InstRet, EB.InstRet);
  }
}

TEST(TraceGeneratorTest, ResetReplaysIdentically) {
  const WorkloadSpec Spec = makeTinySpec();
  TraceGenerator Gen(Spec, Spec.refInput());
  std::vector<BranchEvent> First;
  BranchEvent E;
  for (int I = 0; I < 1000; ++I) {
    ASSERT_TRUE(Gen.next(E));
    First.push_back(E);
  }
  Gen.reset();
  for (int I = 0; I < 1000; ++I) {
    ASSERT_TRUE(Gen.next(E));
    EXPECT_EQ(E.Site, First[I].Site);
    EXPECT_EQ(E.Taken, First[I].Taken);
  }
}

TEST(TraceGeneratorTest, WeightsShapeFrequencies) {
  const WorkloadSpec Spec = makeTinySpec();
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  while (Gen.next(E))
    ;
  const auto &Counts = Gen.siteExecCounts();
  // The hot site dominates the cold one roughly by weight ratio.
  EXPECT_GT(Counts[0], Counts[1] * 5);
}

TEST(TraceGeneratorTest, PhaseMaskConfinesSite) {
  const WorkloadSpec Spec = makeTinySpec();
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  uint64_t LastPhase0Event = 0;
  const uint64_t PhaseLen = Spec.RefEvents / Spec.NumPhases;
  while (Gen.next(E))
    if (E.Site == 3)
      LastPhase0Event = E.Index;
  // Site 3 is restricted to phase 0.
  EXPECT_LT(LastPhase0Event, PhaseLen);
  EXPECT_GT(Gen.siteExecCounts()[3], 0u);
}

TEST(TraceGeneratorTest, GapsWithinConfiguredRange) {
  const WorkloadSpec Spec = makeTinySpec();
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  uint64_t PrevInstRet = 0;
  double GapSum = 0;
  uint64_t N = 0;
  while (Gen.next(E)) {
    ASSERT_GE(E.Gap, Spec.MinGap);
    ASSERT_LE(E.Gap, Spec.MaxGap);
    ASSERT_EQ(E.InstRet, PrevInstRet + E.Gap + 1);
    PrevInstRet = E.InstRet;
    GapSum += E.Gap;
    ++N;
  }
  EXPECT_NEAR(GapSum / static_cast<double>(N),
              (Spec.MinGap + Spec.MaxGap) / 2.0, 0.1);
}

TEST(TraceGeneratorTest, TrainInputDiffersButIsDeterministic) {
  const WorkloadSpec Spec = makeTinySpec();
  const InputConfig Train = Spec.trainInput();
  EXPECT_EQ(Train.Events, Spec.TrainEvents);
  EXPECT_NE(Train.Seed, Spec.refInput().Seed);
  TraceGenerator A(Spec, Train), B(Spec, Train);
  BranchEvent EA, EB;
  for (int I = 0; I < 1000; ++I) {
    ASSERT_TRUE(A.next(EA));
    ASSERT_TRUE(B.next(EB));
    ASSERT_EQ(EA.Site, EB.Site);
    ASSERT_EQ(EA.Taken, EB.Taken);
  }
}

TEST(TraceGeneratorTest, ExpectedExecsTrackEmpirical) {
  const WorkloadSpec Spec = makeTinySpec();
  const InputConfig Ref = Spec.refInput();
  const std::vector<double> Expected = Spec.expectedSiteExecs(Ref);
  TraceGenerator Gen(Spec, Ref);
  BranchEvent E;
  while (Gen.next(E))
    ;
  const auto &Counts = Gen.siteExecCounts();
  for (SiteId S = 0; S < Spec.numSites(); ++S) {
    if (Expected[S] < 100)
      continue;
    EXPECT_NEAR(static_cast<double>(Counts[S]) / Expected[S], 1.0, 0.15)
        << "site " << S;
  }
}

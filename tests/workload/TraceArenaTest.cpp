//===- tests/workload/TraceArenaTest.cpp ----------------------------------===//
//
// The trace arena's contract: an ArenaReplaySource streams events
// bit-identical to the TraceGenerator for the same (spec, input) -- Index
// and InstRet included -- at any consumer chunk size; a key materializes
// exactly once no matter how many cursors open it; the disk tier
// round-trips through ordinary v2 trace files and regenerates on
// corruption; and traces beyond the SCT2 encoding limits fall back to a
// private generator transparently.
//
//===----------------------------------------------------------------------===//

#include "workload/TraceArena.h"

#include "workload/SpecSuite.h"
#include "workload/TraceGenerator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <vector>

using namespace specctrl;
using namespace specctrl::workload;

namespace {

/// Small enough that the 12-benchmark x 2-input sweep runs in seconds,
/// large enough for multi-block traces (see BatchEquivalenceTest).
constexpr SuiteScale TestScale{3.0e3, 0.1};

/// The consumer chunk sizes under test: the pipeline default (= the
/// arena's block size, the zero-copy path) and an odd size that never
/// divides a block (the staging path).
constexpr size_t TestBatches[] = {DefaultBatchEvents, 257};

/// Drains \p Source in chunks of \p Batch and compares every event --
/// all fields -- against a fresh generator stream for (Spec, Input).
void expectStreamIdentity(EventSource &Source, const WorkloadSpec &Spec,
                          const InputConfig &Input, size_t Batch) {
  TraceGenerator Reference(Spec, Input);
  std::vector<BranchEvent> Chunk(Batch);
  BranchEvent Expected;
  uint64_t Count = 0;
  while (const size_t N = Source.nextBatch(Chunk)) {
    for (size_t I = 0; I < N; ++I) {
      ASSERT_TRUE(Reference.next(Expected))
          << Spec.Name << "/" << Input.Name << ": replay stream too long "
          << "at event " << Count;
      ASSERT_EQ(Chunk[I], Expected)
          << Spec.Name << "/" << Input.Name << " batch=" << Batch
          << " event " << Count;
      ++Count;
    }
  }
  EXPECT_FALSE(Reference.next(Expected))
      << Spec.Name << "/" << Input.Name << ": replay stream too short";
  EXPECT_EQ(Count, Input.Events);
}

/// A scratch directory for disk-tier tests, removed on destruction.
class TempDir {
public:
  TempDir() {
    Path = std::filesystem::temp_directory_path() /
           ("specctrl-arena-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
  std::filesystem::path Path;
};

/// The single cached trace file in \p Dir (asserts there is exactly one).
std::filesystem::path cachedFile(const TempDir &Dir) {
  std::filesystem::path Found;
  unsigned N = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir.Path)) {
    Found = Entry.path();
    ++N;
  }
  EXPECT_EQ(N, 1u);
  return Found;
}

} // namespace

TEST(TraceArenaTest, ReplayMatchesGeneratorAcrossSuiteAndChunkSizes) {
  TraceArena Arena;
  for (const BenchmarkProfile &P : suiteProfiles()) {
    const WorkloadSpec Spec = makeBenchmark(P, TestScale);
    for (const InputConfig &Input : {Spec.refInput(), Spec.trainInput()})
      for (const size_t Batch : TestBatches) {
        const std::unique_ptr<EventSource> Source = Arena.open(Spec, Input);
        expectStreamIdentity(*Source, Spec, Input, Batch);
      }
  }
  // Every open above replayed the arena (no fallbacks), and each of the
  // 12 x 2 (spec, input) keys materialized exactly once despite four
  // opens apiece.
  const TraceArenaStats S = Arena.stats();
  EXPECT_EQ(S.Materializations, 24u);
  EXPECT_EQ(S.CursorOpens, 48u);
  EXPECT_EQ(S.Fallbacks, 0u);
  EXPECT_EQ(S.DiskLoads, 0u);
  EXPECT_EQ(S.DiskStores, 0u);
  EXPECT_GT(S.ResidentEvents, 0u);
  // The SCT2 encoding must actually compress vs the 4 B/event v1 format.
  EXPECT_LT(S.ResidentBytes, 4 * S.ResidentEvents);
}

TEST(TraceArenaTest, PerEventNextMatchesGenerator) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TraceArena Arena;
  const std::unique_ptr<EventSource> Source = Arena.open(Spec, Input);
  TraceGenerator Reference(Spec, Input);
  BranchEvent Got, Expected;
  uint64_t Count = 0;
  while (Source->next(Got)) {
    ASSERT_TRUE(Reference.next(Expected));
    ASSERT_EQ(Got, Expected) << "event " << Count;
    ++Count;
  }
  EXPECT_FALSE(Reference.next(Expected));
  EXPECT_EQ(Count, Input.Events);
}

TEST(TraceArenaTest, CursorResetRestartsTheStream) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TraceArena Arena;
  const std::shared_ptr<const MaterializedTrace> Trace =
      Arena.materialize(Spec, Input);
  ASSERT_TRUE(Trace);
  ArenaReplaySource Source(Trace);

  // Consume a ragged prefix, then reset: the stream must restart from
  // event zero with Index/InstRet reconstruction rewound too.
  std::vector<BranchEvent> Chunk(257);
  ASSERT_GT(Source.nextBatch(Chunk), 0u);
  ASSERT_GT(Source.nextBatch(Chunk), 0u);
  Source.reset();
  expectStreamIdentity(Source, Spec, Input, 4096);
}

TEST(TraceArenaTest, IndependentCursorsShareOneMaterialization) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TraceArena Arena;

  // Two cursors advanced in lockstep see identical streams (independent
  // decode positions over the same immutable bytes).
  const std::unique_ptr<EventSource> A = Arena.open(Spec, Input);
  const std::unique_ptr<EventSource> B = Arena.open(Spec, Input);
  std::vector<BranchEvent> ChunkA(257), ChunkB(257);
  while (true) {
    const size_t NA = A->nextBatch(ChunkA);
    const size_t NB = B->nextBatch(ChunkB);
    ASSERT_EQ(NA, NB);
    if (NA == 0)
      break;
    for (size_t I = 0; I < NA; ++I)
      ASSERT_EQ(ChunkA[I], ChunkB[I]);
  }

  const TraceArenaStats S = Arena.stats();
  EXPECT_EQ(S.Materializations, 1u);
  EXPECT_EQ(S.CursorOpens, 2u);
}

TEST(TraceArenaTest, DistinctInputsMaterializeSeparately) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  TraceArena Arena;
  (void)Arena.open(Spec, Spec.refInput());
  (void)Arena.open(Spec, Spec.trainInput());
  (void)Arena.open(Spec, Spec.refInput()); // warm
  const TraceArenaStats S = Arena.stats();
  EXPECT_EQ(S.Materializations, 2u);
  EXPECT_EQ(S.CursorOpens, 3u);
}

TEST(TraceArenaTest, DiskTierRoundTripsAcrossArenaInstances) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;

  {
    // Cold: the mmap tier stream-generates a page-aligned cache file and
    // serves it zero-copy -- nothing is materialized resident.
    TraceArena::Config Cfg;
    Cfg.CacheDir = Dir.str();
    TraceArena Cold(std::move(Cfg));
    const std::unique_ptr<EventSource> Source = Cold.open(Spec, Input);
    expectStreamIdentity(*Source, Spec, Input, DefaultBatchEvents);
    const TraceArenaStats S = Cold.stats();
    EXPECT_EQ(S.MmapStores, 1u);
    EXPECT_EQ(S.MmapLoads, 0u);
    EXPECT_GT(S.MappedBytes, 0u);
    EXPECT_EQ(S.Materializations, 0u);
    EXPECT_EQ(S.ResidentBytes, 0u);
  }

  // A fresh arena (a later process) maps the same cache file -- no
  // regeneration -- and the replayed stream is still bit-identical.
  TraceArena::Config Cfg;
  Cfg.CacheDir = Dir.str();
  TraceArena Warm(std::move(Cfg));
  const std::unique_ptr<EventSource> Source = Warm.open(Spec, Input);
  expectStreamIdentity(*Source, Spec, Input, DefaultBatchEvents);
  const TraceArenaStats S = Warm.stats();
  EXPECT_EQ(S.MmapLoads, 1u);
  EXPECT_EQ(S.MmapStores, 0u);
  EXPECT_EQ(S.Materializations, 0u);
  EXPECT_EQ(S.DiskLoads, 0u);
  EXPECT_EQ(S.ResidentBytes, 0u);
}

TEST(TraceArenaTest, DiskTierResidentPathStillWorksWithMmapOff) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;

  {
    TraceArena::Config Cfg;
    Cfg.CacheDir = Dir.str();
    Cfg.UseMmap = false;
    TraceArena Cold(std::move(Cfg));
    const std::unique_ptr<EventSource> Source = Cold.open(Spec, Input);
    expectStreamIdentity(*Source, Spec, Input, DefaultBatchEvents);
    const TraceArenaStats S = Cold.stats();
    EXPECT_EQ(S.Materializations, 1u);
    EXPECT_EQ(S.DiskStores, 1u);
    EXPECT_EQ(S.DiskLoads, 0u);
    EXPECT_EQ(S.MmapStores, 0u);
  }

  TraceArena::Config Cfg;
  Cfg.CacheDir = Dir.str();
  Cfg.UseMmap = false;
  TraceArena Warm(std::move(Cfg));
  const std::unique_ptr<EventSource> Source = Warm.open(Spec, Input);
  expectStreamIdentity(*Source, Spec, Input, DefaultBatchEvents);
  const TraceArenaStats S = Warm.stats();
  EXPECT_EQ(S.Materializations, 0u);
  EXPECT_EQ(S.DiskLoads, 1u);
  EXPECT_EQ(S.DiskStores, 0u);
  EXPECT_EQ(S.MmapLoads, 0u);
}

TEST(TraceArenaTest, MmapTierReadsResidentTierFilesAndViceVersa) {
  // The two tiers share one cache file per key: a packed file written by
  // the resident path must serve zero-copy, and an aligned file written by
  // the mmap path must load resident -- both bit-identical.
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;

  { // resident writes packed ...
    TraceArena::Config Cfg;
    Cfg.CacheDir = Dir.str();
    Cfg.UseMmap = false;
    TraceArena A(std::move(Cfg));
    (void)A.materialize(Spec, Input);
    EXPECT_EQ(A.stats().DiskStores, 1u);
  }
  { // ... mmap maps it
    TraceArena::Config Cfg;
    Cfg.CacheDir = Dir.str();
    TraceArena B(std::move(Cfg));
    const std::unique_ptr<EventSource> Source = B.open(Spec, Input);
    expectStreamIdentity(*Source, Spec, Input, 257);
    EXPECT_EQ(B.stats().MmapLoads, 1u);
  }

  TempDir Dir2;
  { // mmap writes aligned ...
    TraceArena::Config Cfg;
    Cfg.CacheDir = Dir2.str();
    TraceArena C(std::move(Cfg));
    const std::unique_ptr<EventSource> Source = C.open(Spec, Input);
    expectStreamIdentity(*Source, Spec, Input, DefaultBatchEvents);
    EXPECT_EQ(C.stats().MmapStores, 1u);
  }
  { // ... resident loads it (pad frames skipped)
    TraceArena::Config Cfg;
    Cfg.CacheDir = Dir2.str();
    Cfg.UseMmap = false;
    TraceArena D(std::move(Cfg));
    const std::unique_ptr<EventSource> Source = D.open(Spec, Input);
    expectStreamIdentity(*Source, Spec, Input, DefaultBatchEvents);
    EXPECT_EQ(D.stats().DiskLoads, 1u);
  }
}

TEST(TraceArenaTest, CorruptCacheFileIsRegeneratedNotServed) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  const InputConfig Input = Spec.refInput();
  TempDir Dir;

  {
    TraceArena::Config Cfg;
    Cfg.CacheDir = Dir.str();
    TraceArena Cold(std::move(Cfg));
    (void)Cold.materialize(Spec, Input);
  }

  // Flip one payload byte in the cached file: every block is
  // checksum-verified before a stream is served (the mmap tier verifies
  // the whole mapping up front), so the corruption must be detected and
  // the trace regenerated (and re-stored), never replayed -- and never
  // allowed to fail mid-replay.
  const std::filesystem::path Cached = cachedFile(Dir);
  {
    std::fstream F(Cached, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.is_open());
    F.seekp(-1, std::ios::end);
    const char Flip = static_cast<char>(F.peek() ^ 0x40);
    F.write(&Flip, 1);
  }

  {
    // Mmap tier: the mapped file fails verification, is rewritten
    // page-aligned, and the fresh mapping serves the pristine stream.
    TraceArena::Config Cfg;
    Cfg.CacheDir = Dir.str();
    TraceArena Arena(std::move(Cfg));
    const std::unique_ptr<EventSource> Source = Arena.open(Spec, Input);
    expectStreamIdentity(*Source, Spec, Input, DefaultBatchEvents);
    const TraceArenaStats S = Arena.stats();
    EXPECT_EQ(S.MmapLoads, 0u);
    EXPECT_EQ(S.MmapStores, 1u); // the bad file was replaced
    EXPECT_EQ(S.DiskLoads, 0u);
    EXPECT_EQ(S.Materializations, 0u);
  }

  // Corrupt it again and take the resident path: same guarantee.
  {
    std::fstream F(Cached, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.is_open());
    F.seekp(-1, std::ios::end);
    const char Flip = static_cast<char>(F.peek() ^ 0x40);
    F.write(&Flip, 1);
  }
  TraceArena::Config Cfg;
  Cfg.CacheDir = Dir.str();
  Cfg.UseMmap = false;
  TraceArena Arena(std::move(Cfg));
  const std::unique_ptr<EventSource> Source = Arena.open(Spec, Input);
  expectStreamIdentity(*Source, Spec, Input, DefaultBatchEvents);
  const TraceArenaStats S = Arena.stats();
  EXPECT_EQ(S.DiskLoads, 0u);
  EXPECT_EQ(S.Materializations, 1u);
  EXPECT_EQ(S.DiskStores, 1u); // the bad file was replaced
}

TEST(TraceArenaTest, UnencodableTraceFallsBackToGenerator) {
  // Gaps above 127 are beyond the SCT2 packed taken/gap byte, so this
  // workload cannot be materialized; open() must serve a private
  // generator with the identical stream and count the fallback.
  WorkloadSpec Spec;
  Spec.Name = "wide-gap";
  Spec.RefEvents = 5000;
  Spec.TrainEvents = 1000;
  Spec.MinGap = 120;
  Spec.MaxGap = 200;
  for (unsigned I = 0; I < 8; ++I) {
    SiteSpec S;
    S.Behavior.BiasA = 0.9;
    Spec.Sites.push_back(S);
  }
  const InputConfig Input = Spec.refInput();

  TraceArena Arena;
  EXPECT_EQ(Arena.materialize(Spec, Input), nullptr);
  const std::unique_ptr<EventSource> Source = Arena.open(Spec, Input);
  expectStreamIdentity(*Source, Spec, Input, 257);

  const TraceArenaStats S = Arena.stats();
  EXPECT_EQ(S.Materializations, 0u);
  EXPECT_EQ(S.Fallbacks, 1u);
  EXPECT_EQ(S.CursorOpens, 1u);
  EXPECT_EQ(S.ResidentBytes, 0u);
}

TEST(TraceArenaTest, MaterializedTraceReportsCompression) {
  const WorkloadSpec Spec = makeBenchmark("gzip", TestScale);
  TraceArena Arena;
  const std::shared_ptr<const MaterializedTrace> Trace =
      Arena.materialize(Spec, Spec.refInput());
  ASSERT_TRUE(Trace);
  EXPECT_EQ(Trace->totalEvents(), Spec.RefEvents);
  EXPECT_EQ(Trace->numSites(), Spec.numSites());
  EXPECT_GT(Trace->numBlocks(), 1u);
  // ~2 B/event vs v1's fixed 4 B/event.
  EXPECT_GT(Trace->compressionVsV1(), 1.5);
}

//===- tests/workload/WorkloadTest.cpp ------------------------------------===//
//
// Unit tests for the workload-spec layer itself: input-configuration
// determinism, activity gating, and the analytic execution estimates.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::workload;

TEST(InputConfigTest, ParameterBitsDeterministic) {
  InputConfig A;
  A.Seed = 42;
  InputConfig B;
  B.Seed = 42;
  for (SiteId S = 0; S < 256; ++S)
    EXPECT_EQ(A.parameterBit(S), B.parameterBit(S));
}

TEST(InputConfigTest, DifferentSeedsFlipAboutHalf) {
  InputConfig A, B;
  A.Seed = 1;
  B.Seed = 2;
  unsigned Diff = 0;
  const unsigned N = 4096;
  for (SiteId S = 0; S < N; ++S)
    Diff += A.parameterBit(S) != B.parameterBit(S);
  EXPECT_NEAR(Diff, N / 2.0, N * 0.06);
}

TEST(InputConfigTest, CoverageFollowsProbability) {
  InputConfig In;
  In.Seed = 7;
  In.CoverProb = 0.75;
  unsigned Covered = 0;
  const unsigned N = 4096;
  for (SiteId S = 0; S < N; ++S)
    Covered += In.covers(S);
  EXPECT_NEAR(Covered / static_cast<double>(N), 0.75, 0.04);

  In.CoverProb = 1.0;
  for (SiteId S = 0; S < 64; ++S)
    EXPECT_TRUE(In.covers(S));
}

TEST(WorkloadSpecTest, SiteActivityRespectsPhaseMaskAndGating) {
  WorkloadSpec Spec;
  Spec.Seed = 5;
  Spec.RefEvents = 1000;
  Spec.NumPhases = 4;
  SiteSpec Open;            // all phases
  SiteSpec PhaseLimited;    // phase 2 only
  PhaseLimited.PhaseMask = 1u << 2;
  SiteSpec Gated;
  Gated.InputGated = true;
  Spec.Sites = {Open, PhaseLimited, Gated};
  const InputConfig Ref = Spec.refInput();

  for (unsigned P = 0; P < 4; ++P) {
    EXPECT_TRUE(Spec.siteActive(0, Ref, P));
    EXPECT_EQ(Spec.siteActive(1, Ref, P), P == 2);
    EXPECT_EQ(Spec.siteActive(2, Ref, P), Ref.covers(2));
  }
}

TEST(WorkloadSpecTest, ExpectedExecsSumToRunLength) {
  WorkloadSpec Spec;
  Spec.Seed = 9;
  Spec.RefEvents = 80000;
  Spec.NumPhases = 8;
  for (int I = 0; I < 20; ++I) {
    SiteSpec S;
    S.Weight = 1.0 + I;
    if (I % 5 == 0)
      S.PhaseMask = 0x0F;
    Spec.Sites.push_back(S);
  }
  const std::vector<double> Execs =
      Spec.expectedSiteExecs(Spec.refInput());
  double Sum = 0;
  for (double E : Execs)
    Sum += E;
  EXPECT_NEAR(Sum, static_cast<double>(Spec.RefEvents), 1.0);
}

TEST(WorkloadSpecTest, GroupScheduleDefaultsOn) {
  WorkloadSpec Spec;
  // No schedules registered: every group reads as "on" (biased regime).
  EXPECT_TRUE(Spec.groupOnInPhase(0, 0));
  EXPECT_TRUE(Spec.groupOnInPhase(7, 3));
  Spec.GroupOn = {{true, false}};
  EXPECT_TRUE(Spec.groupOnInPhase(0, 0));
  EXPECT_FALSE(Spec.groupOnInPhase(0, 1));
  // Phases wrap around the schedule row.
  EXPECT_TRUE(Spec.groupOnInPhase(0, 2));
}

TEST(WorkloadSpecTest, TrainInputDefaultsToHalfOfRef) {
  WorkloadSpec Spec;
  Spec.Seed = 3;
  Spec.RefEvents = 100000;
  Spec.TrainEvents = 0; // unset -> half of ref
  EXPECT_EQ(Spec.trainInput().Events, 50000u);
  Spec.TrainEvents = 12345;
  EXPECT_EQ(Spec.trainInput().Events, 12345u);
}

//===- tests/ir/VerifierTest.cpp ------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Function.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::ir;

namespace {

Function makeTrivial() {
  Function F("f", 0, 4);
  F.addBlock();
  F.block(0).Insts.push_back(Instruction::makeHalt());
  return F;
}

} // namespace

TEST(VerifierTest, AcceptsTrivial) {
  const Function F = makeTrivial();
  std::string Error;
  EXPECT_TRUE(verifyFunction(F, &Error)) << Error;
}

TEST(VerifierTest, RejectsEmptyBlock) {
  Function F("f", 0, 4);
  F.addBlock();
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, &Error));
  EXPECT_NE(Error.find("terminator"), std::string::npos);
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Function F("f", 0, 4);
  F.addBlock();
  F.block(0).Insts.push_back(Instruction::makeMovImm(0, 1));
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, &Error));
}

TEST(VerifierTest, RejectsInteriorTerminator) {
  Function F("f", 0, 4);
  F.addBlock();
  F.block(0).Insts.push_back(Instruction::makeHalt());
  F.block(0).Insts.push_back(Instruction::makeHalt());
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, &Error));
  EXPECT_NE(Error.find("interior"), std::string::npos);
}

TEST(VerifierTest, RejectsRegisterOutOfRange) {
  Function F("f", 0, 2);
  F.addBlock();
  F.block(0).Insts.push_back(Instruction::makeMovImm(5, 1)); // r5 >= 2
  F.block(0).Insts.push_back(Instruction::makeHalt());
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, &Error));
  EXPECT_NE(Error.find("register"), std::string::npos);
}

TEST(VerifierTest, RejectsBadBranchTarget) {
  Function F("f", 0, 4);
  F.addBlock();
  F.block(0).Insts.push_back(Instruction::makeBr(0, 7, 0, 1));
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, &Error));
  EXPECT_NE(Error.find("target"), std::string::npos);
}

TEST(VerifierTest, RejectsBranchWithoutSite) {
  Function F("f", 0, 4);
  F.addBlock();
  F.addBlock();
  Instruction Br = Instruction::makeBr(0, 1, 1, 0);
  Br.Site = InvalidSite;
  F.block(0).Insts.push_back(Br);
  F.block(1).Insts.push_back(Instruction::makeHalt());
  std::string Error;
  EXPECT_FALSE(verifyFunction(F, &Error));
  EXPECT_NE(Error.find("site"), std::string::npos);
}

TEST(VerifierTest, RejectsUnknownCallee) {
  Module M;
  Function &F = M.createFunction("f", 2);
  F.addBlock();
  F.block(0).Insts.push_back(Instruction::makeCall(9));
  F.block(0).Insts.push_back(Instruction::makeHalt());
  std::string Error;
  EXPECT_FALSE(verifyModule(M, &Error));
  EXPECT_NE(Error.find("unknown function"), std::string::npos);
}

TEST(VerifierTest, RejectsEmptyModule) {
  Module M;
  std::string Error;
  EXPECT_FALSE(verifyModule(M, &Error));
}

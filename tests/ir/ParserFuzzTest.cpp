//===- tests/ir/ParserFuzzTest.cpp - Parser robustness tests --------------===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hostile-input hardening for the textual SimIR parser: truncations,
/// byte mutations, numeric overflow, duplicate/out-of-order labels, and
/// structurally odd but syntactically plausible inputs must all produce a
/// clean ParseError (or a well-formed result) -- never a crash, assert, or
/// silent wrap.  Runs under the sanitizer configs (SPECCTRL_ASAN/UBSAN).
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace specctrl;
using namespace specctrl::ir;

namespace {

const char *const SampleModule = R"(module (entry @0)
func @main (id=0, regs=8) {
bb0:
  r1 = load [r0 + 100]
  r2 = cmpltimm r1, 32
  br r2, bb1, bb2  ; site 17
bb1:
  r3 = add r1, r2
  store [r0 + 200], r3
  jmp bb3
bb2:
  call @1
  jmp bb3
bb3:
  halt
}
func @leaf (id=1, regs=4) {
bb0:
  store [r0 + 300], r0
  ret
}
)";

/// Every prefix of a valid module either parses or reports a positioned
/// error; it never crashes.
TEST(ParserFuzzTest, TruncationsAreHandled) {
  const std::string Text = SampleModule;
  for (size_t Len = 0; Len <= Text.size(); ++Len) {
    const std::string Prefix = Text.substr(0, Len);
    ParseError Error;
    const std::optional<Module> M = parseModule(Prefix, &Error);
    if (!M) {
      EXPECT_FALSE(Error.Message.empty()) << "prefix length " << Len;
    } else {
      EXPECT_GT(M->numFunctions(), 0u);
    }
  }
}

/// Deterministic single-byte mutations across the whole sample: flip each
/// position to a handful of hostile characters.
TEST(ParserFuzzTest, SingleByteMutationsAreHandled) {
  const std::string Text = SampleModule;
  const char Hostile[] = {'\0', '@', '9', '-', 'r', 'b', '}', ';', ' '};
  for (size_t Pos = 0; Pos < Text.size(); ++Pos) {
    for (const char C : Hostile) {
      std::string Mutant = Text;
      Mutant[Pos] = C;
      ParseError Error;
      const std::optional<Module> M = parseModule(Mutant, &Error);
      if (!M)
        EXPECT_FALSE(Error.Message.empty())
            << "pos " << Pos << " char " << static_cast<int>(C);
    }
  }
}

/// Random line-level splices: shuffle, duplicate, and drop lines.  Seeded
/// -> reproducible.
TEST(ParserFuzzTest, RandomLineSplicesAreHandled) {
  std::vector<std::string> Lines;
  {
    std::istringstream IS(SampleModule);
    std::string L;
    while (std::getline(IS, L))
      Lines.push_back(L);
  }
  Rng R(0x5eed);
  for (int Round = 0; Round < 200; ++Round) {
    std::string Text;
    const size_t N = 1 + R.nextBelow(2 * Lines.size());
    for (size_t I = 0; I < N; ++I) {
      Text += Lines[R.nextBelow(Lines.size())];
      Text += '\n';
    }
    ParseError Error;
    const std::optional<Module> M = parseModule(Text, &Error);
    if (!M)
      EXPECT_FALSE(Error.Message.empty()) << "round " << Round;
  }
}

TEST(ParserFuzzTest, RejectsBadOpcodes) {
  for (const char *Bad : {
           "frobnicate r1, r2",
           "r1 = divide r2, r3",
           "r1 = 'load' [r0 + 4]",
           "br+ r1, bb0, bb1 ; site 0",
           "stor [r0 + 4], r1",
       }) {
    ParseError Error;
    EXPECT_FALSE(parseInstruction(Bad, &Error).has_value()) << Bad;
    EXPECT_FALSE(Error.Message.empty()) << Bad;
  }
}

TEST(ParserFuzzTest, RejectsNumericOverflow) {
  // Immediates beyond int64, block/callee/site ids beyond uint32, and
  // register numbers beyond the file must fail cleanly, never wrap.
  for (const char *Bad : {
           "r1 = movimm 99999999999999999999999",
           "r1 = movimm -99999999999999999999999",
           "jmp bb4294967296",
           "jmp bb99999999999999999999",
           "br r1, bb0, bb4294967299 ; site 0",
           "br r1, bb0, bb1 ; site 4294967295",  // InvalidSite sentinel
           "br r1, bb0, bb1 ; site 99999999999999999999",
           "call @4294967296",
           "r70 = movimm 1",
           "r99999999999999999999 = movimm 1",
       }) {
    ParseError Error;
    EXPECT_FALSE(parseInstruction(Bad, &Error).has_value()) << Bad;
    EXPECT_FALSE(Error.Message.empty()) << Bad;
  }
}

TEST(ParserFuzzTest, RejectsDuplicateAndOutOfOrderLabels) {
  const char *const Dup = "func @f (id=0, regs=2) {\n"
                          "bb0:\n  ret\nbb0:\n  ret\n}\n";
  const char *const Gap = "func @f (id=0, regs=2) {\n"
                          "bb0:\n  ret\nbb2:\n  ret\n}\n";
  for (const char *Text : {Dup, Gap}) {
    ParseError Error;
    EXPECT_FALSE(parseFunction(Text, &Error).has_value());
    EXPECT_NE(Error.Message.find("block label"), std::string::npos);
  }
}

TEST(ParserFuzzTest, RejectsEmptyFunctions) {
  ParseError Error;
  EXPECT_FALSE(
      parseFunction("func @f (id=0, regs=2) {\n}\n", &Error).has_value());
  EXPECT_NE(Error.Message.find("no blocks"), std::string::npos);
}

TEST(ParserFuzzTest, RejectsOversizedHeaderIds) {
  for (const char *Text : {
           "func @f (id=4294967296, regs=2) {\nbb0:\n  ret\n}\n",
           "func @f (id=0, regs=99999999999999999999) {\nbb0:\n  ret\n}\n",
           "func @f (id=-1, regs=2) {\nbb0:\n  ret\n}\n",
       }) {
    ParseError Error;
    EXPECT_FALSE(parseFunction(Text, &Error).has_value()) << Text;
    EXPECT_FALSE(Error.Message.empty()) << Text;
  }
}

/// Self-referencing and forward-referencing blocks are syntactically fine;
/// the parser accepts them and the structural verifier decides validity.
TEST(ParserFuzzTest, SelfReferencingBlocksParse) {
  const char *const Text = "func @spin (id=0, regs=2) {\n"
                           "bb0:\n"
                           "  jmp bb0\n"
                           "}\n";
  ParseError Error;
  const std::optional<Function> F = parseFunction(Text, &Error);
  ASSERT_TRUE(F.has_value()) << Error.Message;
  EXPECT_TRUE(verifyFunction(*F));

  // A branch to a nonexistent block parses but must NOT verify.
  const char *const Dangling = "func @dangle (id=0, regs=2) {\n"
                               "bb0:\n"
                               "  jmp bb7\n"
                               "}\n";
  const std::optional<Function> G = parseFunction(Dangling, &Error);
  ASSERT_TRUE(G.has_value()) << Error.Message;
  EXPECT_FALSE(verifyFunction(*G));
}

} // namespace

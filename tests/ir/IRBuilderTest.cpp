//===- tests/ir/IRBuilderTest.cpp -----------------------------------------===//

#include "ir/IRBuilder.h"

#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::ir;

TEST(IRBuilderTest, BuildsVerifiableDiamond) {
  Module M;
  Function &F = M.createFunction("diamond", 8);
  IRBuilder B(F);
  const uint32_t Entry = B.makeBlock();
  const uint32_t Then = B.makeBlock();
  const uint32_t Else = B.makeBlock();
  const uint32_t Join = B.makeBlock();

  B.setBlock(Entry);
  B.load(1, 0, 16);
  B.cmpLtImm(2, 1, 32);
  B.br(2, Then, Else, /*Site=*/7);

  B.setBlock(Then);
  B.movImm(3, 1);
  B.jmp(Join);

  B.setBlock(Else);
  B.movImm(3, 2);
  B.jmp(Join);

  B.setBlock(Join);
  B.store(0, 8, 3);
  B.ret();

  std::string Error;
  EXPECT_TRUE(verifyFunction(F, &Error)) << Error;
  EXPECT_EQ(F.numBlocks(), 4u);
  EXPECT_EQ(F.staticSize(), 9u);
}

TEST(IRBuilderTest, InstructionShapes) {
  const Instruction MovI = Instruction::makeMovImm(3, -42);
  EXPECT_EQ(MovI.Op, Opcode::MovImm);
  EXPECT_EQ(MovI.Dest, 3);
  EXPECT_EQ(MovI.Imm, -42);
  EXPECT_TRUE(MovI.writesRegister());
  EXPECT_FALSE(MovI.isTerminator());

  const Instruction Br = Instruction::makeBr(1, 2, 3, 99);
  EXPECT_TRUE(Br.isTerminator());
  EXPECT_TRUE(Br.isConditionalBranch());
  EXPECT_EQ(Br.Site, 99u);

  const Instruction St = Instruction::makeStore(0, 8, 4);
  EXPECT_TRUE(St.hasSideEffects());
  EXPECT_FALSE(St.writesRegister());

  const Instruction Ld = Instruction::makeLoad(2, 0, 100);
  EXPECT_TRUE(Ld.writesRegister());
  EXPECT_FALSE(Ld.hasSideEffects());
}

TEST(IRBuilderTest, ModuleEntryAndCallees) {
  Module M;
  Function &Callee = M.createFunction("callee", 2);
  {
    IRBuilder B(Callee);
    B.setBlock(B.makeBlock());
    B.ret();
  }
  // createFunction may reallocate the table; capture the id before growing.
  const uint32_t CalleeId = Callee.id();
  Function &Main = M.createFunction("main", 2);
  {
    IRBuilder B(Main);
    B.setBlock(B.makeBlock());
    B.call(CalleeId);
    B.halt();
  }
  M.setEntry(Main.id());
  EXPECT_EQ(M.entry(), Main.id());
  std::string Error;
  EXPECT_TRUE(verifyModule(M, &Error)) << Error;
}

TEST(IRBuilderTest, OpcodePredicates) {
  EXPECT_TRUE(isTerminator(Opcode::Halt));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_TRUE(isTerminator(Opcode::Jmp));
  EXPECT_FALSE(isTerminator(Opcode::Add));
  EXPECT_TRUE(hasSideEffects(Opcode::Call));
  EXPECT_EQ(numRegSources(Opcode::Store), 2u);
  EXPECT_EQ(numRegSources(Opcode::MovImm), 0u);
  EXPECT_EQ(numRegSources(Opcode::Load), 1u);
}

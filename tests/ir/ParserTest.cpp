//===- tests/ir/ParserTest.cpp --------------------------------------------===//
//
// SimIR parser tests, including printer round trips on synthesized and
// distilled code.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "distill/Distiller.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "workload/ProgramSynthesizer.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace specctrl;
using namespace specctrl::ir;

namespace {

/// Structural equality of two functions.
void expectFunctionsEqual(const Function &A, const Function &B) {
  ASSERT_EQ(A.numBlocks(), B.numBlocks());
  EXPECT_EQ(A.name(), B.name());
  EXPECT_EQ(A.id(), B.id());
  EXPECT_EQ(A.numRegs(), B.numRegs());
  for (uint32_t Blk = 0; Blk < A.numBlocks(); ++Blk) {
    ASSERT_EQ(A.block(Blk).size(), B.block(Blk).size()) << "bb" << Blk;
    for (size_t I = 0; I < A.block(Blk).size(); ++I)
      EXPECT_EQ(instructionToString(A.block(Blk).Insts[I]),
                instructionToString(B.block(Blk).Insts[I]))
          << "bb" << Blk << " inst " << I;
  }
}

} // namespace

TEST(ParserTest, EveryInstructionFormRoundTrips) {
  const Instruction Forms[] = {
      Instruction::makeNop(),
      Instruction::makeMovImm(3, -42),
      Instruction::makeMov(2, 1),
      Instruction::makeBinary(Opcode::Add, 1, 2, 3),
      Instruction::makeBinary(Opcode::Sub, 1, 2, 3),
      Instruction::makeBinary(Opcode::Mul, 1, 2, 3),
      Instruction::makeBinary(Opcode::And, 1, 2, 3),
      Instruction::makeBinary(Opcode::Or, 1, 2, 3),
      Instruction::makeBinary(Opcode::Xor, 1, 2, 3),
      Instruction::makeBinary(Opcode::Shl, 1, 2, 3),
      Instruction::makeBinary(Opcode::Shr, 1, 2, 3),
      Instruction::makeBinary(Opcode::CmpLt, 1, 2, 3),
      Instruction::makeBinary(Opcode::CmpEq, 1, 2, 3),
      Instruction::makeBinaryImm(Opcode::AddImm, 1, 2, -7),
      Instruction::makeBinaryImm(Opcode::CmpLtImm, 1, 2, 32),
      Instruction::makeBinaryImm(Opcode::CmpEqImm, 1, 2, 0),
      Instruction::makeLoad(4, 0, 12345),
      Instruction::makeStore(0, -8, 5),
      Instruction::makeBr(3, 1, 2, 17),
      Instruction::makeJmp(9),
      Instruction::makeCall(4),
      Instruction::makeRet(),
      Instruction::makeHalt(),
  };
  for (const Instruction &I : Forms) {
    const std::string Text = instructionToString(I);
    ParseError Error;
    const auto Parsed = parseInstruction(Text, &Error);
    ASSERT_TRUE(Parsed.has_value()) << Text << ": " << Error.Message;
    EXPECT_EQ(instructionToString(*Parsed), Text);
  }
}

TEST(ParserTest, RejectsMalformedInstructions) {
  for (const char *Bad : {
           "frobnicate r1",
           "r1 = ",
           "r1 = add r2",
           "r99 = movimm 3",             // register out of range
           "br r1, bb2, bb3",            // missing site annotation
           "store [r0 + 4] r2",          // missing comma
           "r1 = load [r0 - 4]",         // '-' only valid inside the number
           "jmp 7",                      // missing bb prefix
           "r1 = movimm 3 extra",        // trailing junk
       }) {
    ParseError Error;
    EXPECT_FALSE(parseInstruction(Bad, &Error).has_value()) << Bad;
    EXPECT_FALSE(Error.Message.empty()) << Bad;
  }
}

TEST(ParserTest, NegativeOffsetsRoundTrip) {
  const auto I = parseInstruction("r1 = load [r0 + -16]");
  ASSERT_TRUE(I.has_value());
  EXPECT_EQ(I->Imm, -16);
}

TEST(ParserTest, FunctionRoundTrip) {
  Module M;
  Function &F = M.createFunction("roundtrip", 8);
  IRBuilder B(F);
  const uint32_t Entry = B.makeBlock();
  const uint32_t Then = B.makeBlock();
  const uint32_t Else = B.makeBlock();
  B.setBlock(Entry);
  B.load(1, 0, 100);
  B.cmpLtImm(2, 1, 32);
  B.br(2, Then, Else, 7);
  B.setBlock(Then);
  B.movImm(3, 1);
  B.store(0, 50, 3);
  B.ret();
  B.setBlock(Else);
  B.halt();

  std::ostringstream OS;
  printFunction(F, OS);
  ParseError Error;
  const auto Parsed = parseFunction(OS.str(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error.Message << " (line "
                                  << Error.Line << ")";
  expectFunctionsEqual(F, *Parsed);
  std::string VerifyError;
  EXPECT_TRUE(verifyFunction(*Parsed, &VerifyError)) << VerifyError;
}

TEST(ParserTest, SynthesizedModuleRoundTrips) {
  using namespace specctrl::workload;
  const SynthSpec Spec = makeDefaultSynthSpec("rt", 77, 500, 3, 0.6);
  SynthProgram P = synthesize(Spec);

  std::ostringstream OS;
  printModule(P.Mod, OS);
  ParseError Error;
  const auto Parsed = parseModule(OS.str(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error.Message << " (line "
                                  << Error.Line << ")";
  ASSERT_EQ(Parsed->numFunctions(), P.Mod.numFunctions());
  EXPECT_EQ(Parsed->entry(), P.Mod.entry());
  for (uint32_t FId = 0; FId < P.Mod.numFunctions(); ++FId)
    expectFunctionsEqual(P.Mod.function(FId), Parsed->function(FId));
  std::string VerifyError;
  EXPECT_TRUE(verifyModule(*Parsed, &VerifyError)) << VerifyError;
}

TEST(ParserTest, DistilledFunctionRoundTrips) {
  using namespace specctrl::workload;
  const SynthSpec Spec = makeDefaultSynthSpec("rtd", 99, 500, 2, 0.9);
  SynthProgram P = synthesize(Spec);
  distill::DistillRequest Request;
  for (const SynthSiteInfo &Info : P.Sites)
    if (!Info.IsControlSite && Info.FunctionId == P.RegionFunctions[0])
      Request.BranchAssertions[Info.Site] = true;
  const distill::DistillResult R = distill::distillFunction(
      P.Mod.function(P.RegionFunctions[0]), Request);

  std::ostringstream OS;
  printFunction(R.Distilled, OS);
  ParseError Error;
  const auto Parsed = parseFunction(OS.str(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error.Message;
  expectFunctionsEqual(R.Distilled, *Parsed);
}

TEST(ParserTest, DiagnosticsCarryLineNumbers) {
  const std::string Bad = "func @f (id=0, regs=4) {\nbb0:\n  bogus op\n}\n";
  ParseError Error;
  EXPECT_FALSE(parseFunction(Bad, &Error).has_value());
  EXPECT_EQ(Error.Line, 3u);
  EXPECT_NE(Error.Message.find("unrecognized"), std::string::npos);
}

TEST(ParserTest, ModuleHeaderValidation) {
  ParseError Error;
  EXPECT_FALSE(parseModule("", &Error).has_value());
  EXPECT_FALSE(parseModule("module (entry @5)\n"
                           "func @f (id=0, regs=2) {\nbb0:\n  halt\n}\n",
                           &Error)
                   .has_value());
  EXPECT_NE(Error.Message.find("entry"), std::string::npos);
}

TEST(ParserTest, CommentsAndBlankLinesIgnored)
{
  const std::string Text = "; a comment\n\nmodule (entry @0)\n\n"
                           "func @f (id=0, regs=2) {\n"
                           "bb0:\n"
                           "  r1 = movimm 5 ; trailing comment\n"
                           "  halt\n"
                           "}\n";
  ParseError Error;
  const auto Parsed = parseModule(Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error.Message;
  EXPECT_EQ(Parsed->function(0).block(0).size(), 2u);
}

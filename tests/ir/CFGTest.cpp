//===- tests/ir/CFGTest.cpp -----------------------------------------------===//

#include "ir/CFG.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace specctrl;
using namespace specctrl::ir;

namespace {

/// entry -> then/else -> join -> exit, plus one unreachable block.
Function makeDiamondWithDeadBlock() {
  Function F("f", 0, 4);
  const uint32_t Entry = F.addBlock();
  const uint32_t Then = F.addBlock();
  const uint32_t Else = F.addBlock();
  const uint32_t Join = F.addBlock();
  const uint32_t Dead = F.addBlock();
  F.block(Entry).Insts.push_back(Instruction::makeBr(0, Then, Else, 1));
  F.block(Then).Insts.push_back(Instruction::makeJmp(Join));
  F.block(Else).Insts.push_back(Instruction::makeJmp(Join));
  F.block(Join).Insts.push_back(Instruction::makeHalt());
  F.block(Dead).Insts.push_back(Instruction::makeJmp(Join));
  return F;
}

} // namespace

TEST(CFGTest, Successors) {
  EXPECT_EQ(successors(Instruction::makeJmp(3)),
            (std::vector<uint32_t>{3}));
  EXPECT_EQ(successors(Instruction::makeBr(0, 1, 2, 5)),
            (std::vector<uint32_t>{1, 2}));
  // A degenerate branch with equal targets has one successor.
  EXPECT_EQ(successors(Instruction::makeBr(0, 4, 4, 5)),
            (std::vector<uint32_t>{4}));
  EXPECT_TRUE(successors(Instruction::makeHalt()).empty());
  EXPECT_TRUE(successors(Instruction::makeRet()).empty());
}

TEST(CFGTest, Predecessors) {
  const Function F = makeDiamondWithDeadBlock();
  const auto Preds = predecessors(F);
  EXPECT_TRUE(Preds[0].empty());
  EXPECT_EQ(Preds[1], (std::vector<uint32_t>{0}));
  EXPECT_EQ(Preds[2], (std::vector<uint32_t>{0}));
  // Join has then, else, and the dead block as predecessors.
  EXPECT_EQ(Preds[3].size(), 3u);
}

TEST(CFGTest, Reachability) {
  const Function F = makeDiamondWithDeadBlock();
  const auto Reach = reachableBlocks(F);
  EXPECT_TRUE(Reach[0]);
  EXPECT_TRUE(Reach[1]);
  EXPECT_TRUE(Reach[2]);
  EXPECT_TRUE(Reach[3]);
  EXPECT_FALSE(Reach[4]);
}

TEST(CFGTest, ReversePostOrderProperties) {
  const Function F = makeDiamondWithDeadBlock();
  const auto RPO = reversePostOrder(F);
  ASSERT_EQ(RPO.size(), 4u); // dead block omitted
  EXPECT_EQ(RPO.front(), 0u);
  // Join must come after both then and else.
  const auto Pos = [&](uint32_t B) {
    return std::find(RPO.begin(), RPO.end(), B) - RPO.begin();
  };
  EXPECT_GT(Pos(3), Pos(1));
  EXPECT_GT(Pos(3), Pos(2));
}

TEST(CFGTest, RPOHandlesLoops) {
  Function F("loop", 0, 2);
  const uint32_t Header = F.addBlock();
  const uint32_t Body = F.addBlock();
  const uint32_t Exit = F.addBlock();
  F.block(Header).Insts.push_back(Instruction::makeBr(0, Body, Exit, 1));
  F.block(Body).Insts.push_back(Instruction::makeJmp(Header));
  F.block(Exit).Insts.push_back(Instruction::makeHalt());
  const auto RPO = reversePostOrder(F);
  ASSERT_EQ(RPO.size(), 3u);
  EXPECT_EQ(RPO.front(), Header);
}

//===- tests/ir/PrinterTest.cpp -------------------------------------------===//

#include "ir/Printer.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace specctrl;
using namespace specctrl::ir;

TEST(PrinterTest, InstructionForms) {
  EXPECT_EQ(instructionToString(Instruction::makeMovImm(1, 42)),
            "r1 = movimm 42");
  EXPECT_EQ(instructionToString(Instruction::makeMov(2, 1)), "r2 = mov r1");
  EXPECT_EQ(instructionToString(
                Instruction::makeBinary(Opcode::CmpLt, 4, 1, 3)),
            "r4 = cmplt r1, r3");
  EXPECT_EQ(instructionToString(
                Instruction::makeBinaryImm(Opcode::AddImm, 1, 1, -2)),
            "r1 = addimm r1, -2");
  EXPECT_EQ(instructionToString(Instruction::makeLoad(1, 0, 16)),
            "r1 = load [r0 + 16]");
  EXPECT_EQ(instructionToString(Instruction::makeStore(0, 8, 2)),
            "store [r0 + 8], r2");
  EXPECT_EQ(instructionToString(Instruction::makeBr(4, 1, 2, 17)),
            "br r4, bb1, bb2  ; site 17");
  EXPECT_EQ(instructionToString(Instruction::makeJmp(3)), "jmp bb3");
  EXPECT_EQ(instructionToString(Instruction::makeCall(5)), "call @5");
  EXPECT_EQ(instructionToString(Instruction::makeRet()), "ret");
  EXPECT_EQ(instructionToString(Instruction::makeHalt()), "halt");
  EXPECT_EQ(instructionToString(Instruction::makeNop()), "nop");
}

TEST(PrinterTest, FunctionLayout) {
  Module M;
  Function &F = M.createFunction("demo", 4);
  IRBuilder B(F);
  B.setBlock(B.makeBlock());
  B.movImm(1, 7);
  B.halt();

  std::ostringstream OS;
  printFunction(F, OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("func @demo"), std::string::npos);
  EXPECT_NE(Out.find("bb0:"), std::string::npos);
  EXPECT_NE(Out.find("  r1 = movimm 7"), std::string::npos);
  EXPECT_NE(Out.find("  halt"), std::string::npos);
}

TEST(PrinterTest, ModuleListsAllFunctions) {
  Module M;
  for (const char *Name : {"a", "b"}) {
    Function &F = M.createFunction(Name, 2);
    IRBuilder B(F);
    B.setBlock(B.makeBlock());
    B.ret();
  }
  std::ostringstream OS;
  printModule(M, OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("func @a"), std::string::npos);
  EXPECT_NE(Out.find("func @b"), std::string::npos);
  EXPECT_NE(Out.find("module (entry @0)"), std::string::npos);
}

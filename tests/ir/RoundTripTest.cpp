//===- tests/ir/RoundTripTest.cpp - Printer/Parser round-trip property ----===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property: print -> parse -> print is byte-identical for every program
/// the synthesizer can produce and for every distillation of those
/// programs.  This is what makes the textual form a reliable interchange
/// format for specctrl-opt and specctrl-lint.
///
//===----------------------------------------------------------------------===//

#include "distill/Distiller.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "workload/ProgramSynthesizer.h"
#include "workload/SpecSuite.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace specctrl;
using namespace specctrl::ir;

namespace {

std::string moduleText(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

std::string functionText(const Function &F) {
  std::ostringstream OS;
  printFunction(F, OS);
  return OS.str();
}

TEST(RoundTripTest, SuiteModulesRoundTripByteIdentical) {
  for (const workload::BenchmarkProfile &Profile :
       workload::suiteProfiles()) {
    const workload::SynthProgram P =
        workload::synthesize(workload::makeSynthSpecFor(Profile, 1000));
    const std::string First = moduleText(P.Mod);

    ParseError Error;
    const std::optional<Module> Reparsed = parseModule(First, &Error);
    ASSERT_TRUE(Reparsed.has_value())
        << Profile.Name << ": line " << Error.Line << ": " << Error.Message;
    EXPECT_TRUE(verifyModule(*Reparsed));
    EXPECT_EQ(moduleText(*Reparsed), First) << Profile.Name;
  }
}

TEST(RoundTripTest, SuiteDistillationsRoundTripByteIdentical) {
  for (const workload::BenchmarkProfile &Profile :
       workload::suiteProfiles()) {
    const workload::SynthProgram P =
        workload::synthesize(workload::makeSynthSpecFor(Profile, 1000));
    for (uint32_t FuncId : P.RegionFunctions) {
      const Function &Original = P.Mod.function(FuncId);

      // Assert every site of this function; the distilled body exercises
      // the printer's jump/straight-line forms.
      distill::DistillRequest Request;
      for (const workload::SynthSiteInfo &S : P.Sites)
        if (S.FunctionId == FuncId && !S.IsControlSite)
          Request.BranchAssertions[S.Site] = S.Behavior.BiasA >= 0.5;

      const Function Distilled =
          distill::distillFunction(Original, Request).Distilled;
      EXPECT_TRUE(verifyFunction(Distilled));

      const std::string First = functionText(Distilled);
      ParseError Error;
      const std::optional<Function> Reparsed = parseFunction(First, &Error);
      ASSERT_TRUE(Reparsed.has_value())
          << Profile.Name << "/" << Original.name() << ": line "
          << Error.Line << ": " << Error.Message;
      EXPECT_EQ(functionText(*Reparsed), First)
          << Profile.Name << "/" << Original.name();
    }
  }
}

} // namespace

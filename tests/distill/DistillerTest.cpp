//===- tests/distill/DistillerTest.cpp ------------------------------------===//
//
// Whole-pipeline distillation tests, including the semantic-preservation
// property: when every speculation holds, the distilled code computes the
// same memory live-outs as the original.
//
//===----------------------------------------------------------------------===//

#include "distill/Distiller.h"

#include "fsim/Interpreter.h"
#include "ir/Verifier.h"
#include "workload/ProgramSynthesizer.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::distill;
using namespace specctrl::ir;
using namespace specctrl::workload;

namespace {

/// Builds a single-region program where every site is deterministic in the
/// assumed direction, so assertions never misspeculate.
SynthProgram makeDeterministicProgram(uint64_t Iterations) {
  SynthSpec Spec;
  Spec.Name = "det";
  Spec.Seed = 3;
  Spec.Iterations = Iterations;
  SynthRegion Region;
  SynthSite Always;
  Always.Behavior = BehaviorSpec::fixed(1.0);
  SynthSite Never;
  Never.Behavior = BehaviorSpec::fixed(0.0);
  Region.Sites = {Always, Never};
  Spec.Regions = {Region};
  return synthesize(Spec);
}

} // namespace

TEST(DistillerTest, ShrinksAssertedRegion) {
  SynthProgram P = makeDeterministicProgram(100);
  const uint32_t RegionFunc = P.RegionFunctions[0];
  DistillRequest Request;
  Request.BranchAssertions[P.Sites[0].Site] = true;
  Request.BranchAssertions[P.Sites[1].Site] = false;

  const DistillResult R =
      distillFunction(P.Mod.function(RegionFunc), Request);
  EXPECT_EQ(R.AssertedSites.size(), 2u);
  EXPECT_LT(R.DistilledSize, R.OriginalSize);
  // Both branch instructions and both outcome loads must be gone, plus a
  // whole arm each: at least 6 instructions saved.
  EXPECT_GE(R.InstructionsEliminated(), 6u);
  std::string Error;
  EXPECT_TRUE(verifyFunction(R.Distilled, &Error)) << Error;
  // No conditional branches remain.
  for (const BasicBlock &BB : R.Distilled.blocks())
    for (const Instruction &I : BB.Insts)
      EXPECT_NE(I.Op, Opcode::Br);
}

TEST(DistillerTest, SemanticPreservationWhenSpeculationsHold) {
  SynthProgram P = makeDeterministicProgram(500);
  const uint32_t RegionFunc = P.RegionFunctions[0];
  DistillRequest Request;
  Request.BranchAssertions[P.Sites[0].Site] = true;
  Request.BranchAssertions[P.Sites[1].Site] = false;
  DistillResult R = distillFunction(P.Mod.function(RegionFunc), Request);

  fsim::Interpreter Original(P.Mod, P.InitialMemory);
  fsim::Interpreter Distilled(P.Mod, P.InitialMemory);
  Distilled.setCodeVersion(RegionFunc, &R.Distilled);

  ASSERT_EQ(Original.run(~0ull >> 1), fsim::StopReason::Halted);
  ASSERT_EQ(Distilled.run(~0ull >> 1), fsim::StopReason::Halted);

  for (uint64_t Addr : P.writableAddrs())
    EXPECT_EQ(Original.loadWord(Addr), Distilled.loadWord(Addr))
        << "addr " << Addr;
  // And it really executed fewer instructions.
  EXPECT_LT(Distilled.instructionsRetired(),
            Original.instructionsRetired());
}

TEST(DistillerTest, MisspeculationChangesLiveOuts) {
  // Assert the wrong direction: the distilled run must diverge in the
  // accumulator (that divergence is exactly what MSSP verification
  // detects).
  SynthProgram P = makeDeterministicProgram(50);
  const uint32_t RegionFunc = P.RegionFunctions[0];
  DistillRequest Request;
  Request.BranchAssertions[P.Sites[0].Site] = false; // wrong!
  DistillResult R = distillFunction(P.Mod.function(RegionFunc), Request);

  fsim::Interpreter Original(P.Mod, P.InitialMemory);
  fsim::Interpreter Distilled(P.Mod, P.InitialMemory);
  Distilled.setCodeVersion(RegionFunc, &R.Distilled);
  ASSERT_EQ(Original.run(~0ull >> 1), fsim::StopReason::Halted);
  ASSERT_EQ(Distilled.run(~0ull >> 1), fsim::StopReason::Halted);

  EXPECT_NE(Original.loadWord(P.AccumulatorAddrs[0]),
            Distilled.loadWord(P.AccumulatorAddrs[0]));
}

TEST(DistillerTest, ValueSpeculationPlusFoldingFigure1) {
  // The Fig. 1 pipeline: a value-check gadget with an invariant bound.
  SynthSpec Spec;
  Spec.Name = "fig1";
  Spec.Seed = 8;
  Spec.Iterations = 200;
  SynthRegion Region;
  SynthSite VC;
  VC.UseValueCheck = true;
  VC.Behavior = BehaviorSpec::fixed(1.0); // always data < bound
  VC.CommonValue = 32;
  VC.ValueInvariance = 1.0; // perfectly invariant for this test
  Region.Sites = {VC};
  Spec.Regions = {Region};
  SynthProgram P = synthesize(Spec);
  const uint32_t RegionFunc = P.RegionFunctions[0];
  const Function &Original = P.Mod.function(RegionFunc);

  // Find the bound load (the one reading the value tape): block 0, the
  // second instruction by construction.
  DistillRequest Request;
  Request.ValueConstants[{0, 1}] = 32;
  Request.BranchAssertions[P.Sites[0].Site] = true;
  DistillResult R = distillFunction(Original, Request);
  EXPECT_EQ(R.SpeculatedLoads, 1u);
  EXPECT_LT(R.DistilledSize, R.OriginalSize);

  // Equivalence under held speculations.
  fsim::Interpreter O(P.Mod, P.InitialMemory);
  fsim::Interpreter D(P.Mod, P.InitialMemory);
  D.setCodeVersion(RegionFunc, &R.Distilled);
  ASSERT_EQ(O.run(~0ull >> 1), fsim::StopReason::Halted);
  ASSERT_EQ(D.run(~0ull >> 1), fsim::StopReason::Halted);
  for (uint64_t Addr : P.writableAddrs())
    EXPECT_EQ(O.loadWord(Addr), D.loadWord(Addr));
}

TEST(DistillerTest, EmptyRequestIsIdentityModuloCleanup) {
  SynthProgram P = makeDeterministicProgram(10);
  const uint32_t RegionFunc = P.RegionFunctions[0];
  const DistillResult R =
      distillFunction(P.Mod.function(RegionFunc), DistillRequest{});
  EXPECT_TRUE(R.AssertedSites.empty());
  // Without assertions only non-speculative cleanups apply (strength
  // reduction can retire a few constant producers); no branch leaves.
  EXPECT_LE(R.DistilledSize, R.OriginalSize);
  unsigned Branches = 0, OriginalBranches = 0;
  for (const BasicBlock &BB : R.Distilled.blocks())
    for (const Instruction &I : BB.Insts)
      Branches += I.Op == Opcode::Br;
  for (const BasicBlock &BB :
       P.Mod.function(RegionFunc).blocks())
    for (const Instruction &I : BB.Insts)
      OriginalBranches += I.Op == Opcode::Br;
  EXPECT_EQ(Branches, OriginalBranches);

  fsim::Interpreter O(P.Mod, P.InitialMemory);
  fsim::Interpreter D(P.Mod, P.InitialMemory);
  D.setCodeVersion(RegionFunc, &R.Distilled);
  ASSERT_EQ(O.run(~0ull >> 1), fsim::StopReason::Halted);
  ASSERT_EQ(D.run(~0ull >> 1), fsim::StopReason::Halted);
  for (uint64_t Addr : P.writableAddrs())
    EXPECT_EQ(O.loadWord(Addr), D.loadWord(Addr));
}

TEST(DistillerTest, PartialAssertionKeepsOtherBranches) {
  SynthProgram P = makeDeterministicProgram(20);
  const uint32_t RegionFunc = P.RegionFunctions[0];
  DistillRequest Request;
  Request.BranchAssertions[P.Sites[0].Site] = true;
  const DistillResult R =
      distillFunction(P.Mod.function(RegionFunc), Request);
  unsigned Branches = 0;
  for (const BasicBlock &BB : R.Distilled.blocks())
    for (const Instruction &I : BB.Insts)
      Branches += I.Op == Opcode::Br;
  EXPECT_EQ(Branches, 1u); // site 1's branch survives
}

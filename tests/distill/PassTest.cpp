//===- tests/distill/PassTest.cpp -----------------------------------------===//
//
// Unit tests for the distiller's individual passes.
//
//===----------------------------------------------------------------------===//

#include "distill/Distiller.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::distill;
using namespace specctrl::ir;

namespace {

/// entry: load outcome; br -> then/else; both store to acc; join: ret.
Function makeGadget() {
  Function F("g", 0, 8);
  IRBuilder B(F);
  const uint32_t Entry = B.makeBlock();
  const uint32_t Then = B.makeBlock();
  const uint32_t Else = B.makeBlock();
  const uint32_t Join = B.makeBlock();
  B.setBlock(Entry);
  B.load(1, 0, 100); // outcome
  B.br(1, Then, Else, 7);
  B.setBlock(Then);
  B.movImm(2, 1);
  B.store(0, 50, 2);
  B.jmp(Join);
  B.setBlock(Else);
  B.movImm(2, 2);
  B.store(0, 50, 2);
  B.jmp(Join);
  B.setBlock(Join);
  B.ret();
  return F;
}

} // namespace

TEST(PassTest, BranchAssertionRewritesToJump) {
  Function F = makeGadget();
  std::vector<SiteId> Removed;
  applyBranchAssertions(F, {{7, true}}, Removed);
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_EQ(Removed[0], 7u);
  const Instruction &Term = F.block(0).terminator();
  EXPECT_EQ(Term.Op, Opcode::Jmp);
  EXPECT_EQ(Term.ThenTarget, 1u); // then-target for a taken assertion
}

TEST(PassTest, BranchAssertionUnknownSiteUntouched) {
  Function F = makeGadget();
  std::vector<SiteId> Removed;
  applyBranchAssertions(F, {{99, true}}, Removed);
  EXPECT_TRUE(Removed.empty());
  EXPECT_EQ(F.block(0).terminator().Op, Opcode::Br);
}

TEST(PassTest, StraightenRemovesDeadArm) {
  Function F = makeGadget();
  std::vector<SiteId> Removed;
  applyBranchAssertions(F, {{7, false}}, Removed);
  EXPECT_TRUE(straightenFunction(F));
  std::string Error;
  ASSERT_TRUE(verifyFunction(F, &Error)) << Error;
  // then-arm is unreachable and gone; everything merges into one block.
  EXPECT_EQ(F.numBlocks(), 1u);
  // The surviving code stores 2 (the else arm's constant).
  bool SawMov2 = false;
  for (const Instruction &I : F.block(0).Insts)
    SawMov2 |= I.Op == Opcode::MovImm && I.Imm == 2;
  EXPECT_TRUE(SawMov2);
}

TEST(PassTest, ValueSpeculationReplacesLoad) {
  Function F = makeGadget();
  const uint32_t N = applyValueSpeculation(F, {{{0, 0}, 32}});
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(F.block(0).Insts[0].Op, Opcode::MovImm);
  EXPECT_EQ(F.block(0).Insts[0].Imm, 32);
  // Non-load locations are not rewritten.
  Function G = makeGadget();
  EXPECT_EQ(applyValueSpeculation(G, {{{0, 1}, 32}}), 0u);
}

TEST(PassTest, ConstantFoldingThroughAlu) {
  Function F("cf", 0, 8);
  IRBuilder B(F);
  B.setBlock(B.makeBlock());
  B.movImm(1, 10);
  B.movImm(2, 3);
  B.binary(Opcode::Add, 3, 1, 2); // 13
  B.cmpLtImm(4, 3, 20);           // 1
  B.store(0, 50, 3);
  B.store(0, 51, 4);
  B.ret();

  EXPECT_TRUE(foldConstants(F));
  EXPECT_EQ(F.block(0).Insts[2].Op, Opcode::MovImm);
  EXPECT_EQ(F.block(0).Insts[2].Imm, 13);
  EXPECT_EQ(F.block(0).Insts[3].Op, Opcode::MovImm);
  EXPECT_EQ(F.block(0).Insts[3].Imm, 1);
}

TEST(PassTest, ConstantBranchBecomesJump) {
  Function F("cb", 0, 4);
  IRBuilder B(F);
  const uint32_t Entry = B.makeBlock();
  const uint32_t T = B.makeBlock();
  const uint32_t E = B.makeBlock();
  B.setBlock(Entry);
  B.movImm(1, 0);
  B.br(1, T, E, 3);
  B.setBlock(T);
  B.ret();
  B.setBlock(E);
  B.ret();

  EXPECT_TRUE(foldConstants(F));
  const Instruction &Term = F.block(0).terminator();
  EXPECT_EQ(Term.Op, Opcode::Jmp);
  EXPECT_EQ(Term.ThenTarget, E);
}

TEST(PassTest, FoldingMatchesInterpreterSemantics) {
  // Signed comparison and wrapping arithmetic must fold exactly as the
  // interpreter computes them.
  Function F("sem", 0, 8);
  IRBuilder B(F);
  B.setBlock(B.makeBlock());
  B.movImm(1, -1);
  B.movImm(2, 1);
  B.binary(Opcode::CmpLt, 3, 1, 2); // -1 < 1 (signed) -> 1
  B.store(0, 60, 3);
  B.movImm(4, INT64_MAX);
  B.binary(Opcode::Add, 5, 4, 2); // wraps to INT64_MIN bit pattern
  B.store(0, 61, 5);
  B.ret();
  EXPECT_TRUE(foldConstants(F));
  EXPECT_EQ(F.block(0).Insts[2].Imm, 1);
  EXPECT_EQ(static_cast<uint64_t>(F.block(0).Insts[5].Imm),
            static_cast<uint64_t>(INT64_MAX) + 1);
}

TEST(PassTest, StrengthReductionWithOneConstant) {
  Function F("sr", 0, 8);
  IRBuilder B(F);
  B.setBlock(B.makeBlock());
  B.movImm(1, 32);                      // becomes dead after reduction
  B.load(2, 0, 100);
  B.binary(Opcode::CmpLt, 3, 2, 1);     // -> cmpltimm r2, 32
  B.binary(Opcode::Add, 4, 1, 2);       // -> addimm r2, 32 (commutative)
  B.binary(Opcode::CmpEq, 5, 1, 2);     // -> cmpeqimm r2, 32
  B.binary(Opcode::CmpLt, 6, 1, 2);     // imm < reg: NOT expressible
  B.store(0, 50, 3);
  B.store(0, 51, 4);
  B.store(0, 52, 5);
  B.store(0, 53, 6);
  B.ret();

  EXPECT_TRUE(foldConstants(F));
  EXPECT_EQ(F.block(0).Insts[2].Op, Opcode::CmpLtImm);
  EXPECT_EQ(F.block(0).Insts[2].Imm, 32);
  EXPECT_EQ(F.block(0).Insts[3].Op, Opcode::AddImm);
  EXPECT_EQ(F.block(0).Insts[4].Op, Opcode::CmpEqImm);
  EXPECT_EQ(F.block(0).Insts[5].Op, Opcode::CmpLt); // untouched
  // The constant producer dies once nothing reads r1.
  EXPECT_FALSE(eliminateDeadCode(F)); // r1 still read by the raw CmpLt
}

TEST(PassTest, StrengthReductionRetiresConstantProducer) {
  Function F("srd", 0, 8);
  IRBuilder B(F);
  B.setBlock(B.makeBlock());
  B.movImm(1, 32);
  B.load(2, 0, 100);
  B.binary(Opcode::CmpLt, 3, 2, 1);
  B.store(0, 50, 3);
  B.ret();
  EXPECT_TRUE(foldConstants(F));
  EXPECT_TRUE(eliminateDeadCode(F)); // movimm r1 is now dead
  EXPECT_EQ(F.block(0).size(), 4u);
}

TEST(PassTest, DeadCodeEliminationDropsUnusedLoads) {
  Function F("dce", 0, 8);
  IRBuilder B(F);
  B.setBlock(B.makeBlock());
  B.load(1, 0, 100); // dead: r1 never used
  B.movImm(2, 5);    // live: stored
  B.movImm(3, 6);    // dead: overwritten
  B.movImm(3, 7);    // live: stored
  B.store(0, 50, 2);
  B.store(0, 51, 3);
  B.ret();

  EXPECT_TRUE(eliminateDeadCode(F));
  std::string Error;
  ASSERT_TRUE(verifyFunction(F, &Error)) << Error;
  EXPECT_EQ(F.block(0).size(), 5u); // two movs, two stores, ret
  for (const Instruction &I : F.block(0).Insts)
    EXPECT_NE(I.Op, Opcode::Load);
}

TEST(PassTest, DceKeepsValuesLiveAcrossBlocks) {
  Function F("live", 0, 8);
  IRBuilder B(F);
  const uint32_t Entry = B.makeBlock();
  const uint32_t Next = B.makeBlock();
  B.setBlock(Entry);
  B.load(1, 0, 100); // live in Next
  B.jmp(Next);
  B.setBlock(Next);
  B.store(0, 50, 1);
  B.ret();

  EXPECT_FALSE(eliminateDeadCode(F));
  EXPECT_EQ(F.block(0).Insts[0].Op, Opcode::Load);
}

TEST(PassTest, DceKeepsBranchConditions) {
  Function F = makeGadget();
  EXPECT_FALSE(eliminateDeadCode(F));
  EXPECT_EQ(F.block(0).Insts[0].Op, Opcode::Load);
}

TEST(PassTest, DceHandlesLoopLiveness) {
  // r1 accumulates across loop iterations; it must stay.
  Function F("loop", 0, 8);
  IRBuilder B(F);
  const uint32_t Header = B.makeBlock();
  const uint32_t Body = B.makeBlock();
  const uint32_t Exit = B.makeBlock();
  B.setBlock(Header);
  B.load(2, 0, 100);
  B.br(2, Body, Exit, 4);
  B.setBlock(Body);
  B.addImm(1, 1, 1);
  B.jmp(Header);
  B.setBlock(Exit);
  B.store(0, 50, 1);
  B.ret();
  EXPECT_FALSE(eliminateDeadCode(F));
  bool SawAdd = false;
  for (const Instruction &I : F.block(Body).Insts)
    SawAdd |= I.Op == Opcode::AddImm;
  EXPECT_TRUE(SawAdd);
}

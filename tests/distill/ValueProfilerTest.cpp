//===- tests/distill/ValueProfilerTest.cpp --------------------------------===//

#include "distill/ValueProfiler.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::distill;

namespace {

fsim::InstLocation loc(uint32_t Func, uint32_t Block, uint32_t Index) {
  fsim::InstLocation L;
  L.Func = Func;
  L.Block = Block;
  L.Index = Index;
  return L;
}

} // namespace

TEST(ValueProfilerTest, DetectsInvariantLoad) {
  ValueProfiler P(/*FunctionId=*/3);
  for (int I = 0; I < 999; ++I)
    P.onLoad(loc(3, 0, 1), 100, 32);
  P.onLoad(loc(3, 0, 1), 100, 40);

  const auto Loads = P.invariantLoads(0.995, 64);
  ASSERT_EQ(Loads.size(), 1u);
  EXPECT_EQ(Loads.begin()->second, 32);
  EXPECT_EQ(Loads.begin()->first.Block, 0u);
  EXPECT_EQ(Loads.begin()->first.Index, 1u);
}

TEST(ValueProfilerTest, IgnoresOtherFunctions) {
  ValueProfiler P(3);
  for (int I = 0; I < 1000; ++I)
    P.onLoad(loc(4, 0, 1), 100, 32);
  EXPECT_TRUE(P.sites().empty());
}

TEST(ValueProfilerTest, RejectsVaryingLoad) {
  ValueProfiler P(0);
  for (int I = 0; I < 1000; ++I)
    P.onLoad(loc(0, 0, 0), 100, static_cast<uint64_t>(I % 7));
  EXPECT_TRUE(P.invariantLoads(0.995, 64).empty());
}

TEST(ValueProfilerTest, MinExecsGate) {
  ValueProfiler P(0);
  for (int I = 0; I < 32; ++I)
    P.onLoad(loc(0, 0, 0), 100, 5);
  EXPECT_TRUE(P.invariantLoads(0.99, 64).empty());
  EXPECT_EQ(P.invariantLoads(0.99, 16).size(), 1u);
}

TEST(ValueProfilerTest, MajorityVoteRecoversAfterPrefixNoise) {
  // A load that settles on a constant after a noisy warmup: the
  // Boyer-Moore candidate converges to the majority value.
  ValueProfiler P(0);
  for (int I = 0; I < 50; ++I)
    P.onLoad(loc(0, 0, 0), 100, static_cast<uint64_t>(I));
  for (int I = 0; I < 10000; ++I)
    P.onLoad(loc(0, 0, 0), 100, 77);
  const auto &S = P.sites().begin()->second;
  EXPECT_EQ(S.Candidate, 77u);
  EXPECT_GT(S.invariance(), 0.98);
}

TEST(ValueProfilerTest, TracksMultipleSitesIndependently) {
  ValueProfiler P(0);
  for (int I = 0; I < 200; ++I) {
    P.onLoad(loc(0, 0, 0), 100, 1);
    P.onLoad(loc(0, 2, 5), 200, 9);
  }
  const auto Loads = P.invariantLoads(0.99, 64);
  ASSERT_EQ(Loads.size(), 2u);
  EXPECT_EQ(Loads.at({0, 0}), 1);
  EXPECT_EQ(Loads.at({2, 5}), 9);
}

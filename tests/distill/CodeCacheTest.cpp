//===- tests/distill/CodeCacheTest.cpp ------------------------------------===//

#include "distill/CodeCache.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::distill;
using namespace specctrl::ir;

namespace {

Function makeVersion(const char *Name, uint32_t Id) {
  Function F(Name, Id, 4);
  IRBuilder B(F);
  B.setBlock(B.makeBlock());
  B.ret();
  return F;
}

} // namespace

TEST(CodeCacheTest, EmptyHasNoVersions) {
  CodeCache Cache;
  EXPECT_EQ(Cache.current(0), nullptr);
  EXPECT_EQ(Cache.versionCount(0), 0u);
  EXPECT_EQ(Cache.totalVersions(), 0u);
}

TEST(CodeCacheTest, InstallAndCurrent) {
  CodeCache Cache;
  const Function *V1 = Cache.install(5, makeVersion("v1", 5));
  EXPECT_EQ(Cache.current(5), V1);
  EXPECT_EQ(Cache.versionCount(5), 1u);

  const Function *V2 = Cache.install(5, makeVersion("v2", 5));
  EXPECT_EQ(Cache.current(5), V2);
  EXPECT_NE(V1, V2);
  EXPECT_EQ(Cache.versionCount(5), 2u);
  EXPECT_EQ(Cache.totalVersions(), 2u);
}

TEST(CodeCacheTest, PointersStableAcrossInstalls) {
  CodeCache Cache;
  const Function *First = Cache.install(1, makeVersion("a", 1));
  const std::string NameBefore = First->name();
  for (int I = 0; I < 100; ++I)
    Cache.install(1, makeVersion("x", 1));
  Cache.install(2, makeVersion("other", 2));
  // The first pointer still dereferences to the same function.
  EXPECT_EQ(First->name(), NameBefore);
  EXPECT_EQ(Cache.versionCount(1), 101u);
  EXPECT_EQ(Cache.totalVersions(), 102u);
}

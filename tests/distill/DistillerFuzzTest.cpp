//===- tests/distill/DistillerFuzzTest.cpp --------------------------------===//
//
// Property-based fuzzing of the distillation pipeline:
//
//  * random ALU programs: constant folding + DCE must preserve the exact
//    memory-visible semantics of the interpreter;
//  * random synthesized programs with deterministic branches: asserting
//    every branch to its true direction must preserve all writable state
//    while strictly shrinking the dynamic instruction count.
//
//===----------------------------------------------------------------------===//

#include "distill/Distiller.h"

#include "fsim/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Rng.h"
#include "workload/ProgramSynthesizer.h"

#include <gtest/gtest.h>

using namespace specctrl;
using namespace specctrl::distill;
using namespace specctrl::ir;

namespace {

/// Builds a random straight-line program: ALU soup over 8 registers with
/// loads from a small input region and stores to an output region.
Function makeRandomStraightLine(Rng &R, unsigned Length) {
  Function F("fuzz", 0, 8);
  IRBuilder B(F);
  B.setBlock(B.makeBlock());
  const Opcode AluOps[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                           Opcode::And, Opcode::Or,  Opcode::Xor,
                           Opcode::Shl, Opcode::Shr, Opcode::CmpLt,
                           Opcode::CmpEq};
  for (unsigned I = 0; I < Length; ++I) {
    const uint8_t Rd = 1 + static_cast<uint8_t>(R.nextBelow(7));
    switch (R.nextBelow(6)) {
    case 0:
      B.movImm(Rd, static_cast<int64_t>(R.next() % 1000) - 500);
      break;
    case 1:
      B.load(Rd, 0, static_cast<int64_t>(R.nextBelow(8)));
      break;
    case 2:
      B.addImm(Rd, 1 + static_cast<uint8_t>(R.nextBelow(7)),
               static_cast<int64_t>(R.nextBelow(64)) - 32);
      break;
    case 3:
      B.cmpLtImm(Rd, 1 + static_cast<uint8_t>(R.nextBelow(7)),
                 static_cast<int64_t>(R.nextBelow(100)));
      break;
    case 4:
      B.store(0, 16 + static_cast<int64_t>(R.nextBelow(8)),
              1 + static_cast<uint8_t>(R.nextBelow(7)));
      break;
    default:
      B.binary(AluOps[R.nextBelow(std::size(AluOps))], Rd,
               1 + static_cast<uint8_t>(R.nextBelow(7)),
               1 + static_cast<uint8_t>(R.nextBelow(7)));
      break;
    }
  }
  // Flush every register so DCE cannot legally delete everything.
  for (uint8_t Reg = 1; Reg < 8; ++Reg)
    B.store(0, 32 + Reg, Reg);
  B.ret();
  return F;
}

std::vector<uint64_t> runAndDump(const Module &M, const Function *Version,
                                 uint32_t FuncId) {
  std::vector<uint64_t> Memory(64, 0);
  for (size_t I = 0; I < 8; ++I)
    Memory[I] = 0x9E3779B97F4A7C15ull * (I + 1);
  fsim::Interpreter Interp(M, Memory);
  if (Version)
    Interp.setCodeVersion(FuncId, Version);
  EXPECT_EQ(Interp.run(1u << 22), fsim::StopReason::Halted);
  std::vector<uint64_t> Out;
  for (uint64_t Addr = 16; Addr < 48; ++Addr)
    Out.push_back(Interp.loadWord(Addr));
  return Out;
}

class StraightLineFuzz : public ::testing::TestWithParam<uint64_t> {};
class SynthesizedFuzz : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(StraightLineFuzz, OptimizationsPreserveMemorySemantics) {
  Rng R(GetParam());
  for (int Round = 0; Round < 20; ++Round) {
    Module M;
    Function &Main = M.createFunction("main", 2);
    {
      IRBuilder B(Main);
      B.setBlock(B.makeBlock());
      B.call(1);
      B.halt();
    }
    Function &F = M.createFunction("fuzz", 8);
    F = makeRandomStraightLine(R, 10 + static_cast<unsigned>(
                                          R.nextBelow(60)));
    // createFunction assigned id 1; the random builder used id 0.
    Function Fixed("fuzz", 1, 8);
    Fixed.blocks() = F.blocks();
    F = Fixed;
    ASSERT_TRUE(verifyModule(M, nullptr));

    const std::vector<uint64_t> Reference = runAndDump(M, nullptr, 1);

    // Fold + DCE + straighten via the full pipeline with no speculations:
    // must be a pure (semantics-preserving) cleanup.
    const DistillResult Result =
        distillFunction(M.function(1), DistillRequest{});
    const std::vector<uint64_t> Optimized =
        runAndDump(M, &Result.Distilled, 1);
    ASSERT_EQ(Reference, Optimized) << "round " << Round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StraightLineFuzz,
                         ::testing::Values(11ull, 222ull, 3333ull, 44444ull,
                                           555555ull));

TEST_P(SynthesizedFuzz, TrueAssertionsPreserveStateAndShrinkWork) {
  using namespace specctrl::workload;
  Rng R(GetParam());
  for (int Round = 0; Round < 4; ++Round) {
    // Deterministic branch behaviors so "assert the true direction" never
    // misspeculates.
    SynthSpec Spec;
    Spec.Name = "fuzz";
    Spec.Seed = R.next();
    Spec.Iterations = 300 + R.nextBelow(700);
    const unsigned NumRegions = 1 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned Reg = 0; Reg < NumRegions; ++Reg) {
      SynthRegion Region;
      Region.Weight = 0.5 + R.nextDouble();
      const unsigned NumSites = 1 + static_cast<unsigned>(R.nextBelow(4));
      for (unsigned SI = 0; SI < NumSites; ++SI) {
        SynthSite Site;
        Site.FillerThen = static_cast<unsigned>(R.nextBelow(3));
        Site.FillerElse = static_cast<unsigned>(R.nextBelow(3));
        Site.Behavior = BehaviorSpec::fixed(R.nextBool(0.5) ? 1.0 : 0.0);
        Region.Sites.push_back(Site);
      }
      Spec.Regions.push_back(Region);
    }
    SynthProgram P = synthesize(Spec);

    // Reference run.
    fsim::Interpreter Original(P.Mod, P.InitialMemory);
    ASSERT_EQ(Original.run(~0ull >> 1), fsim::StopReason::Halted);

    // Assert every gadget site to its true direction and distill every
    // region.
    fsim::Interpreter Distilled(P.Mod, P.InitialMemory);
    std::vector<DistillResult> Results;
    Results.reserve(P.RegionFunctions.size());
    for (uint32_t FuncId : P.RegionFunctions) {
      DistillRequest Request;
      for (const SynthSiteInfo &Info : P.Sites)
        if (!Info.IsControlSite && Info.FunctionId == FuncId)
          Request.BranchAssertions[Info.Site] = Info.Behavior.BiasA >= 0.5;
      Results.push_back(distillFunction(P.Mod.function(FuncId), Request));
      Distilled.setCodeVersion(FuncId, &Results.back().Distilled);
    }
    ASSERT_EQ(Distilled.run(~0ull >> 1), fsim::StopReason::Halted);

    for (uint64_t Addr : P.writableAddrs())
      ASSERT_EQ(Original.loadWord(Addr), Distilled.loadWord(Addr))
          << "seed " << GetParam() << " round " << Round << " addr "
          << Addr;
    EXPECT_LT(Distilled.instructionsRetired(),
              Original.instructionsRetired());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesizedFuzz,
                         ::testing::Values(7ull, 77ull, 777ull, 7777ull));

//===- tests/engine/ArenaRaceTest.cpp -------------------------------------===//
//
// The arena-backed engine contract under concurrency: when several worker
// threads hit a cold arena key at once (one benchmark, many configs, so
// every cell wants the same trace the moment the run starts), exactly one
// materialization happens, every cell replays it, and the per-cell
// ControlStats are bit-identical to an arena-less serial run.  Built to
// run under TSAN (-DSPECCTRL_TSAN=ON): the call_once/mutex discipline in
// TraceArena is what it exercises.
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentRunner.h"

#include "core/ReactiveController.h"
#include "workload/SpecSuite.h"
#include "workload/TraceArena.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace specctrl;
using namespace specctrl::core;
using namespace specctrl::engine;
using namespace specctrl::workload;

namespace {

constexpr SuiteScale TestScale{3.0e3, 0.1};

ReactiveConfig scaledConfig(double SelectThreshold) {
  ReactiveConfig C = ReactiveConfig::baseline();
  C.MonitorPeriod = 100;
  C.WaitPeriod = 2000;
  C.OptLatency = 0;
  C.SelectThreshold = SelectThreshold;
  return C;
}

/// One benchmark, eight configs: every cell needs the same (spec, input)
/// trace, so a parallel run races all workers on one cold arena key.
ExperimentPlan contendedPlan() {
  ExperimentPlan Plan;
  Plan.setBaseSeed(42);
  Plan.addBenchmark(makeBenchmark("gzip", TestScale));
  const double Ladder[] = {0.90, 0.95, 0.98, 0.99,
                           0.995, 0.998, 0.9995, 0.9999};
  for (const double T : Ladder)
    Plan.addConfig("t" + std::to_string(T), [T](const CellContext &) {
      return std::make_unique<ReactiveController>(scaledConfig(T));
    });
  return Plan;
}

std::vector<ControlStats> cellStats(const RunReport &Report) {
  std::vector<ControlStats> Out;
  for (const CellResult &Cell : Report.Cells) {
    EXPECT_FALSE(Cell.Failed) << Cell.Config << ": " << Cell.Error;
    Out.push_back(Cell.Stats);
  }
  return Out;
}

} // namespace

TEST(ArenaRaceTest, ColdKeyRaceMaterializesOnceAndMatchesSerialNoArena) {
  ExperimentPlan Plan = contendedPlan();

  // The oracle: serial, no arena (every cell re-synthesizes its trace).
  RunOptions Serial;
  Serial.Jobs = 1;
  const std::vector<ControlStats> Reference =
      cellStats(runPlan(Plan, Serial));
  ASSERT_EQ(Reference.size(), 8u);

  // Four workers race on the single cold key; repeated to give the race
  // a few chances to interleave differently (esp. under TSAN).
  for (unsigned Round = 0; Round < 3; ++Round) {
    auto Arena = std::make_shared<TraceArena>();
    Plan.setTraceArena(Arena);
    RunOptions Parallel;
    Parallel.Jobs = 4;
    const std::vector<ControlStats> Racy =
        cellStats(runPlan(Plan, Parallel));
    Plan.setTraceArena(nullptr);

    ASSERT_EQ(Racy.size(), Reference.size());
    for (size_t I = 0; I < Reference.size(); ++I)
      EXPECT_EQ(Racy[I], Reference[I]) << "cell " << I << " round " << Round;

    const TraceArenaStats S = Arena->stats();
    EXPECT_EQ(S.Materializations, 1u) << "round " << Round;
    EXPECT_EQ(S.CursorOpens, 8u) << "round " << Round;
    EXPECT_EQ(S.Fallbacks, 0u) << "round " << Round;
  }
}

TEST(ArenaRaceTest, SharedArenaAcrossPlansReusesMaterializations) {
  // Two plans backed by one arena (the suitePlan + --trace-cache-dir use
  // case, minus the disk): the second run's cells are all warm hits.
  ExperimentPlan Plan = contendedPlan();
  auto Arena = std::make_shared<TraceArena>();
  Plan.setTraceArena(Arena);

  RunOptions Parallel;
  Parallel.Jobs = 4;
  const std::vector<ControlStats> First = cellStats(runPlan(Plan, Parallel));
  const std::vector<ControlStats> Second = cellStats(runPlan(Plan, Parallel));
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(First[I], Second[I]) << "cell " << I;

  const TraceArenaStats S = Arena->stats();
  EXPECT_EQ(S.Materializations, 1u);
  EXPECT_EQ(S.CursorOpens, 16u);
}

//===- tests/engine/MsspEnginePlanTest.cpp --------------------------------===//
//
// Task-cell plans (addTaskConfig): the MSSP benches run whole timing
// simulations as experiment cells, so the engine must (a) hand task cells
// the same deterministic context as controller cells, (b) return their
// values through CellResult::Value, (c) isolate their failures, and
// (d) produce bit-identical values serial vs parallel -- that last
// property is what lets fig7/fig8 offer --jobs without perturbing their
// CSVs.
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentRunner.h"

#include "core/ReactiveController.h"
#include "mssp/MsspSimulator.h"
#include "workload/SpecSuite.h"

#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <stdexcept>
#include <string>

using namespace specctrl;
using namespace specctrl::engine;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

/// A small MSSP simulation cell, keyed off the axis' benchmark name --
/// the same shape the fig7/fig8 benches use.
std::any runMsspCell(const CellContext &Ctx, uint64_t Iterations) {
  const SynthProgram Program = synthesize(
      makeSynthSpecFor(profileByName(Ctx.Spec.Name), Iterations));
  MsspConfig Cfg;
  Cfg.Control.MonitorPeriod = 1000;
  Cfg.Control.EnableEviction = true;
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 100000;
  MsspSimulator Sim(Program, Cfg);
  return Sim.run();
}

ExperimentPlan msspPlan(uint64_t Iterations) {
  ExperimentPlan Plan;
  Plan.addBenchmark(makeBenchmark("bzip2"));
  Plan.addBenchmark(makeBenchmark("gcc"));
  Plan.addTaskConfig("mssp", [Iterations](const CellContext &Ctx) {
    return runMsspCell(Ctx, Iterations);
  });
  Plan.addTaskConfig("baseline", [Iterations](const CellContext &Ctx) {
    const SynthProgram Program = synthesize(
        makeSynthSpecFor(profileByName(Ctx.Spec.Name), Iterations));
    return std::any(
        simulateSuperscalarBaseline(Program, MachineConfig()));
  });
  return Plan;
}

void expectSameResult(const MsspResult &A, const MsspResult &B,
                      const std::string &Tag) {
  EXPECT_EQ(A.TotalCycles, B.TotalCycles) << Tag;
  EXPECT_EQ(A.Tasks, B.Tasks) << Tag;
  EXPECT_EQ(A.TaskSquashes, B.TaskSquashes) << Tag;
  EXPECT_EQ(A.MasterInstructions, B.MasterInstructions) << Tag;
  EXPECT_EQ(A.CheckerInstructions, B.CheckerInstructions) << Tag;
  EXPECT_EQ(A.Regenerations, B.Regenerations) << Tag;
  EXPECT_EQ(A.DistillCacheHits, B.DistillCacheHits) << Tag;
  EXPECT_EQ(A.DistillCacheMisses, B.DistillCacheMisses) << Tag;
  EXPECT_EQ(A.Controller.CorrectSpecs, B.Controller.CorrectSpecs) << Tag;
  EXPECT_EQ(A.Controller.IncorrectSpecs, B.Controller.IncorrectSpecs)
      << Tag;
}

TEST(MsspEnginePlanTest, TaskCellsReturnValues) {
  const ExperimentPlan Plan = msspPlan(2000);
  const RunReport Report = runPlan(Plan, {.Jobs = 1});
  ASSERT_EQ(Report.Cells.size(), 4u);
  EXPECT_EQ(Report.failedCells(), 0u);
  for (uint32_t B = 0; B < 2; ++B) {
    const MsspResult R =
        std::any_cast<MsspResult>(Report.cell(B, 0, 0).Value);
    EXPECT_GT(R.Tasks, 0u);
    EXPECT_GT(std::any_cast<uint64_t>(Report.cell(B, 0, 1).Value), 0u);
  }
  // Task cells have no trace metrics or observer.
  EXPECT_EQ(Report.Cells[0].Events, 0u);
  EXPECT_EQ(Report.Cells[0].Observer, nullptr);
}

TEST(MsspEnginePlanTest, SerialAndParallelBitIdentical) {
  const ExperimentPlan Plan = msspPlan(2000);
  const RunReport Serial = runPlan(Plan, {.Jobs = 1});
  const RunReport Parallel = runPlan(Plan, {.Jobs = 4});
  ASSERT_EQ(Serial.Cells.size(), Parallel.Cells.size());
  EXPECT_EQ(Parallel.Jobs, 4u);
  for (uint32_t B = 0; B < 2; ++B) {
    expectSameResult(
        std::any_cast<MsspResult>(Serial.cell(B, 0, 0).Value),
        std::any_cast<MsspResult>(Parallel.cell(B, 0, 0).Value),
        "bench" + std::to_string(B));
    EXPECT_EQ(std::any_cast<uint64_t>(Serial.cell(B, 0, 1).Value),
              std::any_cast<uint64_t>(Parallel.cell(B, 0, 1).Value));
  }
}

TEST(MsspEnginePlanTest, TaskCellContextIsDeterministic) {
  ExperimentPlan Plan;
  Plan.setBaseSeed(42);
  Plan.addBenchmark(makeBenchmark("bzip2"));
  Plan.addBenchmark(makeBenchmark("gcc"));
  Plan.addTaskConfig("seed", [](const CellContext &Ctx) {
    EXPECT_EQ(Ctx.BaseSeed, 42u);
    return std::any(Ctx.Seed);
  });
  const RunReport Report = runPlan(Plan, {.Jobs = 2});
  ASSERT_EQ(Report.failedCells(), 0u);
  for (uint32_t B = 0; B < 2; ++B)
    EXPECT_EQ(std::any_cast<uint64_t>(Report.cell(B, 0, 0).Value),
              ExperimentPlan::cellSeed(42, {B, 0, 0}));
}

TEST(MsspEnginePlanTest, TaskCellFailureIsIsolated) {
  ExperimentPlan Plan;
  Plan.addBenchmark(makeBenchmark("bzip2"));
  Plan.addBenchmark(makeBenchmark("gcc"));
  Plan.addTaskConfig("task", [](const CellContext &Ctx) {
    if (Ctx.Spec.Name == "bzip2")
      throw std::runtime_error("task cell exploded");
    return std::any(uint64_t{7});
  });
  const RunReport Report = runPlan(Plan, {.Jobs = 2});
  ASSERT_EQ(Report.Cells.size(), 2u);
  EXPECT_TRUE(Report.cell(0, 0, 0).Failed);
  EXPECT_EQ(Report.cell(0, 0, 0).Error, "task cell exploded");
  EXPECT_FALSE(Report.cell(1, 0, 0).Failed);
  EXPECT_EQ(std::any_cast<uint64_t>(Report.cell(1, 0, 0).Value), 7u);
}

TEST(MsspEnginePlanTest, MixedControllerAndTaskColumns) {
  ExperimentPlan Plan;
  Plan.addBenchmark(makeBenchmark("bzip2"));
  Plan.addConfig("reactive", [](const CellContext &) {
    core::ReactiveConfig Cfg;
    Cfg.MonitorPeriod = 1000;
    Cfg.OptLatency = 0;
    return std::make_unique<core::ReactiveController>(Cfg);
  });
  Plan.addTaskConfig("task",
                     [](const CellContext &) { return std::any(int{3}); });
  const RunReport Report = runPlan(Plan, {.Jobs = 2});
  ASSERT_EQ(Report.failedCells(), 0u);
  // Controller column: trace ran, no Value.
  EXPECT_GT(Report.cell(0, 0, 0).Events, 0u);
  EXPECT_FALSE(Report.cell(0, 0, 0).Value.has_value());
  // Task column: Value set, no trace metrics.
  EXPECT_EQ(std::any_cast<int>(Report.cell(0, 0, 1).Value), 3);
  EXPECT_EQ(Report.cell(0, 0, 1).Events, 0u);
}

} // namespace

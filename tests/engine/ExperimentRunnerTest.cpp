//===- tests/engine/ExperimentRunnerTest.cpp ------------------------------===//
//
// Runner behavior: report layout, per-cell seeding, observer plumbing,
// throughput accounting, and failure isolation (a throwing cell must not
// poison its siblings).
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentRunner.h"

#include "core/Driver.h"
#include "core/ReactiveController.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

using namespace specctrl;
using namespace specctrl::core;
using namespace specctrl::engine;
using namespace specctrl::workload;

namespace {

WorkloadSpec smallSpec(const char *Name, uint64_t Seed,
                       uint64_t Events = 20000) {
  WorkloadSpec Spec;
  Spec.Name = Name;
  Spec.Seed = Seed;
  Spec.RefEvents = Events;
  Spec.TrainEvents = Events / 2;
  Spec.NumPhases = 1;
  SiteSpec Biased;
  Biased.Behavior = BehaviorSpec::fixed(0.999);
  Biased.Weight = 3.0;
  SiteSpec Noise;
  Noise.Behavior = BehaviorSpec::fixed(0.5);
  Noise.Weight = 1.0;
  Spec.Sites = {Biased, Noise};
  return Spec;
}

ReactiveConfig fastConfig() {
  ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;
  return Cfg;
}

ControllerFactory reactiveFactory() {
  return [](const CellContext &) {
    return std::make_unique<ReactiveController>(fastConfig());
  };
}

/// A controller that throws mid-run: exercises failure isolation.
class ThrowingController final : public SpeculationController {
public:
  BranchVerdict onBranch(SiteId, bool, uint64_t) override {
    if (++Seen > 100)
      throw std::runtime_error("deliberate cell failure");
    return {};
  }
  bool isDeployed(SiteId) const override { return false; }
  bool deployedDirection(SiteId) const override { return false; }
  const ControlStats &stats() const override { return Stats; }
  ControlStats &stats() override { return Stats; }
  const char *name() const override { return "throwing"; }

private:
  uint64_t Seen = 0;
  ControlStats Stats;
};

/// Counts the events its cell saw.
class CountingObserver final : public core::TraceObserver {
public:
  void onEvent(const BranchEvent &, const BranchVerdict &) override {
    ++Events;
  }
  uint64_t Events = 0;
};

} // namespace

TEST(ExperimentRunnerTest, ReportHasStableGridOrder) {
  ExperimentPlan Plan;
  WorkloadSpec A = smallSpec("alpha", 1);
  Plan.addBenchmark(A, {A.refInput(), A.trainInput()});
  Plan.addBenchmark(smallSpec("beta", 2));
  Plan.addConfig("one", reactiveFactory());
  Plan.addConfig("two", reactiveFactory());
  EXPECT_EQ(Plan.numCells(), 6u);

  const RunReport Report = runPlan(Plan, {.Jobs = 4});
  ASSERT_EQ(Report.Cells.size(), 6u);
  EXPECT_EQ(Report.failedCells(), 0u);

  // benchmark-major, then input, then config.
  EXPECT_EQ(Report.Cells[0].Benchmark, "alpha");
  EXPECT_EQ(Report.Cells[0].Input, "ref");
  EXPECT_EQ(Report.Cells[0].Config, "one");
  EXPECT_EQ(Report.Cells[1].Config, "two");
  EXPECT_EQ(Report.Cells[2].Input, "train");
  EXPECT_EQ(Report.Cells[4].Benchmark, "beta");

  const CellResult *Found = Report.find("alpha", "train", "two");
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->Coord, (CellCoord{0, 1, 1}));
  EXPECT_EQ(&Report.cell(0, 1, 1), Found);
  EXPECT_EQ(Report.find("alpha", "ref", "missing"), nullptr);
}

TEST(ExperimentRunnerTest, CellSeedsAreCoordinatePure) {
  const uint64_t S00 = ExperimentPlan::cellSeed(7, {0, 0, 0});
  EXPECT_EQ(S00, ExperimentPlan::cellSeed(7, {0, 0, 0}));
  EXPECT_NE(S00, ExperimentPlan::cellSeed(7, {0, 0, 1}));
  EXPECT_NE(S00, ExperimentPlan::cellSeed(7, {0, 1, 0}));
  EXPECT_NE(S00, ExperimentPlan::cellSeed(7, {1, 0, 0}));
  EXPECT_NE(S00, ExperimentPlan::cellSeed(8, {0, 0, 0}));

  ExperimentPlan Plan;
  Plan.setBaseSeed(7);
  Plan.addBenchmark(smallSpec("alpha", 1, 2000));
  Plan.addConfig("one", reactiveFactory());
  const RunReport Report = runPlan(Plan, {.Jobs = 1});
  EXPECT_EQ(Report.Cells[0].Seed, S00);
}

TEST(ExperimentRunnerTest, CountsEventsAndThroughput) {
  ExperimentPlan Plan;
  Plan.addBenchmark(smallSpec("alpha", 3, 30000));
  Plan.addConfig("one", reactiveFactory());
  const RunReport Report = runPlan(Plan, {.Jobs = 2});
  const CellResult &Cell = Report.cell(0, 0, 0);
  EXPECT_EQ(Cell.Events, 30000u);
  EXPECT_EQ(Cell.Stats.EventsConsumed, 30000u);
  EXPECT_EQ(Cell.Stats.Branches, 30000u);
  EXPECT_GT(Cell.WallSeconds, 0.0);
  EXPECT_GE(Cell.QueueWaitSeconds, 0.0);
  EXPECT_GT(Cell.eventsPerSecond(), 0.0);
  EXPECT_EQ(Report.totalEvents(), 30000u);
  EXPECT_GT(Report.eventsPerSecond(), 0.0);
}

TEST(ExperimentRunnerTest, FailingCellDoesNotPoisonSiblings) {
  ExperimentPlan Plan;
  Plan.addBenchmark(smallSpec("alpha", 1));
  Plan.addBenchmark(smallSpec("beta", 2));
  Plan.addConfig("good", reactiveFactory());
  Plan.addConfig("bad", [](const CellContext &Ctx) // throws on one bench
                 -> std::unique_ptr<SpeculationController> {
    if (Ctx.Coord.Benchmark == 0)
      return std::make_unique<ThrowingController>();
    return std::make_unique<ReactiveController>(fastConfig());
  });

  const RunReport Report = runPlan(Plan, {.Jobs = 4});
  ASSERT_EQ(Report.Cells.size(), 4u);
  EXPECT_EQ(Report.failedCells(), 1u);

  const CellResult &Bad = Report.cell(0, 0, 1);
  EXPECT_TRUE(Bad.Failed);
  EXPECT_EQ(Bad.Error, "deliberate cell failure");

  for (const CellResult &Cell : Report.Cells) {
    if (&Cell == &Bad)
      continue;
    EXPECT_FALSE(Cell.Failed) << Cell.Benchmark << "/" << Cell.Config;
    EXPECT_EQ(Cell.Stats.Branches, 20000u);
  }
}

TEST(ExperimentRunnerTest, NullControllerFactoryIsCapturedAsFailure) {
  ExperimentPlan Plan;
  Plan.addBenchmark(smallSpec("alpha", 1, 2000));
  Plan.addConfig("null", [](const CellContext &) {
    return std::unique_ptr<SpeculationController>();
  });
  const RunReport Report = runPlan(Plan, {.Jobs = 1});
  ASSERT_EQ(Report.failedCells(), 1u);
  EXPECT_NE(Report.Cells[0].Error.find("factory returned null"),
            std::string::npos);
}

TEST(ExperimentRunnerTest, ObserverFactoryRunsPerCell) {
  ExperimentPlan Plan;
  Plan.addBenchmark(smallSpec("alpha", 1, 10000));
  Plan.addBenchmark(smallSpec("beta", 2, 15000));
  Plan.addConfig("one", reactiveFactory());
  Plan.setObserverFactory([](const CellContext &Ctx)
                              -> std::unique_ptr<core::TraceObserver> {
    if (Ctx.Spec.Name == "beta")
      return nullptr; // observers are optional per cell
    return std::make_unique<CountingObserver>();
  });

  const RunReport Report = runPlan(Plan, {.Jobs = 4});
  const CellResult &Alpha = Report.cell(0, 0, 0);
  ASSERT_NE(Alpha.Observer, nullptr);
  EXPECT_EQ(static_cast<const CountingObserver &>(*Alpha.Observer).Events,
            10000u);
  EXPECT_EQ(Report.cell(1, 0, 0).Observer, nullptr);
  // Cells without an observer still count consumed events.
  EXPECT_EQ(Report.cell(1, 0, 0).Events, 15000u);
}

//===- tests/engine/ProcessPoolTest.cpp -----------------------------------===//
//
// The multi-process plan executor: fragment wire-format round trips,
// corruption rejection, bit-identical results vs the in-process runner at
// any worker count, cross-boundary failure isolation, plan-shape
// rejection, and scratch-file hygiene.
//
//===----------------------------------------------------------------------===//

#include "engine/ProcessPool.h"

#include "core/ReactiveController.h"
#include "workload/TraceArena.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <stdexcept>

using namespace specctrl;
using namespace specctrl::core;
using namespace specctrl::engine;
using namespace specctrl::workload;

namespace fs = std::filesystem;

namespace {

WorkloadSpec smallSpec(const char *Name, uint64_t Seed,
                       uint64_t Events = 20000) {
  WorkloadSpec Spec;
  Spec.Name = Name;
  Spec.Seed = Seed;
  Spec.RefEvents = Events;
  Spec.TrainEvents = Events / 2;
  Spec.NumPhases = 1;
  SiteSpec Biased;
  Biased.Behavior = BehaviorSpec::fixed(0.999);
  Biased.Weight = 3.0;
  SiteSpec Noise;
  Noise.Behavior = BehaviorSpec::fixed(0.5);
  Noise.Weight = 1.0;
  Spec.Sites = {Biased, Noise};
  return Spec;
}

ReactiveConfig fastConfig() {
  ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;
  return Cfg;
}

ControllerFactory reactiveFactory() {
  return [](const CellContext &) {
    return std::make_unique<ReactiveController>(fastConfig());
  };
}

ExperimentPlan smallPlan() {
  ExperimentPlan Plan;
  WorkloadSpec A = smallSpec("alpha", 1);
  Plan.addBenchmark(A, {A.refInput(), A.trainInput()});
  Plan.addBenchmark(smallSpec("beta", 2));
  Plan.addConfig("one", reactiveFactory());
  Plan.addConfig("two", reactiveFactory());
  return Plan;
}

/// A fresh scratch directory, removed on scope exit.
class TempDir {
public:
  TempDir() {
    Path = fs::temp_directory_path() /
           ("specctrl-pptest-" +
            std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }

private:
  fs::path Path;
};

CellResult richCell() {
  CellResult Cell;
  Cell.Coord = {3, 1, 2};
  Cell.Benchmark = "gzip";
  Cell.Input = "ref";
  Cell.Config = "baseline";
  Cell.Seed = 0xfeedface12345678ull;
  Cell.Stats.Branches = 123456;
  Cell.Stats.LastInstRet = 98765432;
  Cell.Stats.CorrectSpecs = 42000;
  Cell.Stats.IncorrectSpecs = 17;
  Cell.Stats.DeployRequests = 9;
  Cell.Stats.RevokeRequests = 4;
  Cell.Stats.SuppressedRequests = 2;
  Cell.Stats.Evictions = 3;
  Cell.Stats.Revisits = 5;
  Cell.Stats.EventsConsumed = 123456;
  Cell.Stats.Touched = {1, 0, 1, 1};
  Cell.Stats.EverBiased = {1, 0, 0, 1};
  Cell.Stats.SiteEvictions = {2, 0, 0, 1};
  Cell.Stats.Transitions = {{0, 64, 12}, {3, 10, 10}};
  Cell.Failed = false;
  Cell.Events = 123456;
  Cell.Batches = 31;
  Cell.WallSeconds = 1.25;
  Cell.QueueWaitSeconds = 0.125;
  return Cell;
}

} // namespace

TEST(ProcessPoolTest, FragmentRoundTripPreservesEveryField) {
  const CellResult Cell = richCell();
  const std::vector<uint8_t> Bytes = encodeCellFragment(Cell);

  CellResult Out;
  std::string Error;
  ASSERT_TRUE(decodeCellFragment(Bytes, Out, Error)) << Error;
  EXPECT_EQ(Out.Coord, Cell.Coord);
  EXPECT_EQ(Out.Benchmark, Cell.Benchmark);
  EXPECT_EQ(Out.Input, Cell.Input);
  EXPECT_EQ(Out.Config, Cell.Config);
  EXPECT_EQ(Out.Seed, Cell.Seed);
  EXPECT_EQ(Out.Stats, Cell.Stats);
  EXPECT_EQ(Out.Failed, Cell.Failed);
  EXPECT_EQ(Out.Error, Cell.Error);
  EXPECT_EQ(Out.Events, Cell.Events);
  EXPECT_EQ(Out.Batches, Cell.Batches);
  EXPECT_EQ(Out.WallSeconds, Cell.WallSeconds);
  EXPECT_EQ(Out.QueueWaitSeconds, Cell.QueueWaitSeconds);
}

TEST(ProcessPoolTest, FragmentRoundTripPreservesFailure) {
  CellResult Cell = richCell();
  Cell.Failed = true;
  Cell.Error = "deliberate cell failure";
  const std::vector<uint8_t> Bytes = encodeCellFragment(Cell);

  CellResult Out;
  std::string Error;
  ASSERT_TRUE(decodeCellFragment(Bytes, Out, Error)) << Error;
  EXPECT_TRUE(Out.Failed);
  EXPECT_EQ(Out.Error, "deliberate cell failure");
}

TEST(ProcessPoolTest, FragmentRejectsCorruptionAndTruncation) {
  const std::vector<uint8_t> Bytes = encodeCellFragment(richCell());

  CellResult Out;
  std::string Error;
  // Every single-byte flip must be rejected (checksummed frame).
  for (size_t I = 0; I < Bytes.size(); I += 7) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x20;
    EXPECT_FALSE(decodeCellFragment(Bad, Out, Error))
        << "flip at byte " << I << " was accepted";
  }
  // Truncation at any prefix length must be rejected, not overrun.
  for (size_t Len = 0; Len < Bytes.size(); Len += 13)
    EXPECT_FALSE(decodeCellFragment(
        std::span<const uint8_t>(Bytes.data(), Len), Out, Error));
}

TEST(ProcessPoolTest, MatchesInProcessRunBitIdentically) {
  const ExperimentPlan Plan = smallPlan();
  const RunReport Serial = runPlan(Plan, {.Jobs = 1});
  ASSERT_EQ(Serial.failedCells(), 0u);

  for (const unsigned Procs : {1u, 3u}) {
    ProcessRunOptions Options;
    Options.Procs = Procs;
    const RunReport Forked = runPlanProcesses(Plan, Options);
    ASSERT_EQ(Forked.Cells.size(), Serial.Cells.size());
    EXPECT_EQ(Forked.failedCells(), 0u);
    for (size_t I = 0; I < Serial.Cells.size(); ++I) {
      const CellResult &S = Serial.Cells[I];
      const CellResult &F = Forked.Cells[I];
      EXPECT_EQ(F.Coord, S.Coord);
      EXPECT_EQ(F.Benchmark, S.Benchmark);
      EXPECT_EQ(F.Input, S.Input);
      EXPECT_EQ(F.Config, S.Config);
      EXPECT_EQ(F.Seed, S.Seed);
      EXPECT_EQ(F.Stats, S.Stats)
          << "procs=" << Procs << " diverged at cell " << I;
      EXPECT_EQ(F.Events, S.Events);
      EXPECT_EQ(F.Batches, S.Batches);
    }
  }
}

TEST(ProcessPoolTest, SharesDiskTierAcrossWorkers) {
  // With a cache-dir arena the workers replay through the mmap store: the
  // first to need a key publishes the aligned cache file, the rest map
  // it.  Results must still match the in-process run exactly.
  TempDir Cache;
  ExperimentPlan Plan = smallPlan();
  TraceArena::Config Cfg;
  Cfg.CacheDir = Cache.str();
  Plan.setTraceArena(std::make_shared<TraceArena>(std::move(Cfg)));

  const RunReport Serial = runPlan(Plan, {.Jobs = 1});
  ProcessRunOptions Options;
  Options.Procs = 2;
  const RunReport Forked = runPlanProcesses(Plan, Options);
  ASSERT_EQ(Forked.failedCells(), 0u);
  for (size_t I = 0; I < Serial.Cells.size(); ++I)
    EXPECT_EQ(Forked.Cells[I].Stats, Serial.Cells[I].Stats);

  // The workers left their materializations behind for the next run.
  size_t CacheFiles = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Cache.str()))
    CacheFiles += E.path().extension() == ".sct2";
  EXPECT_GT(CacheFiles, 0u);
}

TEST(ProcessPoolTest, FailedCellCrossesTheProcessBoundary) {
  ExperimentPlan Plan = smallPlan();
  Plan.addConfig("broken", [](const CellContext &)
                     -> std::unique_ptr<SpeculationController> {
    throw std::runtime_error("deliberate cell failure");
  });

  ProcessRunOptions Options;
  Options.Procs = 2;
  const RunReport Report = runPlanProcesses(Plan, Options);
  ASSERT_EQ(Report.Cells.size(), 9u);
  for (const CellResult &Cell : Report.Cells) {
    if (Cell.Config == "broken") {
      EXPECT_TRUE(Cell.Failed);
      EXPECT_NE(Cell.Error.find("deliberate cell failure"),
                std::string::npos)
          << Cell.Error;
    } else {
      EXPECT_FALSE(Cell.Failed) << Cell.Error;
    }
  }
}

TEST(ProcessPoolTest, RejectsPlansThatCannotCrossTheBoundary) {
  {
    ExperimentPlan Plan = smallPlan();
    Plan.addTaskConfig("task", [](const CellContext &) {
      return std::any(42);
    });
    EXPECT_THROW(runPlanProcesses(Plan), std::invalid_argument);
  }
  {
    ExperimentPlan Plan = smallPlan();
    Plan.setObserverFactory([](const CellContext &) {
      return std::unique_ptr<core::TraceObserver>();
    });
    EXPECT_THROW(runPlanProcesses(Plan), std::invalid_argument);
  }
}

TEST(ProcessPoolTest, CallerWorkDirIsSweptClean) {
  TempDir Work;
  const ExperimentPlan Plan = smallPlan();
  ProcessRunOptions Options;
  Options.Procs = 2;
  Options.WorkDir = Work.str();
  const RunReport Report = runPlanProcesses(Plan, Options);
  EXPECT_EQ(Report.failedCells(), 0u);

  // The directory itself is the caller's; the pool's index and fragments
  // must be gone.
  EXPECT_TRUE(fs::exists(Work.str()));
  EXPECT_TRUE(fs::is_empty(Work.str()));
}

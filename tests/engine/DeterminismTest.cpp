//===- tests/engine/DeterminismTest.cpp -----------------------------------===//
//
// The engine's core contract: running a plan with --jobs N produces
// bit-identical per-cell ControlStats for every N, because each cell's
// randomness is a pure function of (base seed, cell coordinates) and no
// state is shared between cells.  Exercised over the full twelve-benchmark
// paper suite at a reduced scale, with two controller configurations.
//
// This is the tier-1 `engine_determinism` ctest target (see
// tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentRunner.h"

#include "core/ReactiveController.h"
#include "workload/SpecSuite.h"

#include <gtest/gtest.h>

#include <memory>

using namespace specctrl;
using namespace specctrl::core;
using namespace specctrl::engine;
using namespace specctrl::workload;

namespace {

/// Small enough that the whole 12-benchmark grid runs in a few seconds,
/// large enough that the reactive controller classifies, deploys, and
/// evicts (the stats being compared are not all-zero).
constexpr SuiteScale TestScale{3.0e3, 0.1};

/// Table 2's periods shrunk to match the compressed per-site execution
/// counts at TestScale, so the controller actually classifies, deploys,
/// and evicts within each short run.
ReactiveConfig scaledConfig(ReactiveConfig C) {
  C.MonitorPeriod = 100;
  C.WaitPeriod = 2000;
  C.OptLatency = 0;
  return C;
}

ExperimentPlan fullSuitePlan() {
  ExperimentPlan Plan;
  Plan.setBaseSeed(42);
  for (const BenchmarkProfile &P : suiteProfiles())
    Plan.addBenchmark(makeBenchmark(P, TestScale));
  Plan.addConfig("baseline", [](const CellContext &) {
    return std::make_unique<ReactiveController>(
        scaledConfig(ReactiveConfig::baseline()));
  });
  Plan.addConfig("no-eviction", [](const CellContext &) {
    return std::make_unique<ReactiveController>(
        scaledConfig(ReactiveConfig::noEviction()));
  });
  return Plan;
}

} // namespace

TEST(DeterminismTest, SerialAndParallelSuiteRunsAreIdentical) {
  const ExperimentPlan Plan = fullSuitePlan();
  ASSERT_EQ(Plan.numCells(), 24u);

  const RunReport Serial = runPlan(Plan, {.Jobs = 1});
  const RunReport Parallel = runPlan(Plan, {.Jobs = 4});

  ASSERT_EQ(Serial.Cells.size(), Parallel.Cells.size());
  EXPECT_EQ(Serial.failedCells(), 0u);
  EXPECT_EQ(Parallel.failedCells(), 0u);

  uint64_t NonTrivialCells = 0;
  for (size_t I = 0; I < Serial.Cells.size(); ++I) {
    const CellResult &S = Serial.Cells[I];
    const CellResult &P = Parallel.Cells[I];
    EXPECT_EQ(S.Benchmark, P.Benchmark);
    EXPECT_EQ(S.Input, P.Input);
    EXPECT_EQ(S.Config, P.Config);
    EXPECT_EQ(S.Seed, P.Seed);
    EXPECT_EQ(S.Events, P.Events);
    // Whole-struct comparison: every counter, rate input, and the full
    // transition log must match bit-for-bit.
    EXPECT_EQ(S.Stats, P.Stats) << S.Benchmark << "/" << S.Config;
    if (S.Stats.DeployRequests > 0)
      ++NonTrivialCells;
  }
  // The comparison must be exercising real controller activity.
  EXPECT_GT(NonTrivialCells, 0u);
}

TEST(DeterminismTest, RepeatedParallelRunsAreIdentical) {
  const ExperimentPlan Plan = fullSuitePlan();
  const RunReport A = runPlan(Plan, {.Jobs = 4});
  const RunReport B = runPlan(Plan, {.Jobs = 4});
  ASSERT_EQ(A.Cells.size(), B.Cells.size());
  for (size_t I = 0; I < A.Cells.size(); ++I)
    EXPECT_EQ(A.Cells[I].Stats, B.Cells[I].Stats)
        << A.Cells[I].Benchmark << "/" << A.Cells[I].Config;
}

TEST(DeterminismTest, BaseSeedChangesResults) {
  ExperimentPlan Plan;
  Plan.addBenchmark(makeBenchmark("bzip2", TestScale));
  Plan.addConfig("baseline", [](const CellContext &) {
    return std::make_unique<ReactiveController>(ReactiveConfig::baseline());
  });

  Plan.setBaseSeed(1);
  const RunReport A = runPlan(Plan, {.Jobs = 1});
  Plan.setBaseSeed(2);
  const RunReport B = runPlan(Plan, {.Jobs = 1});
  EXPECT_NE(A.Cells[0].Seed, B.Cells[0].Seed);
}

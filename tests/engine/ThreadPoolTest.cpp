//===- tests/engine/ThreadPoolTest.cpp ------------------------------------===//

#include "engine/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

using namespace specctrl;
using namespace specctrl::engine;

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolveJobs(3), 3u);
  EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool Pool(3);
  EXPECT_EQ(Pool.size(), 3u);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(4);
    for (int I = 0; I < 1000; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), 1000);
  }
}

TEST(ThreadPoolTest, NoTaskLossUnderContention) {
  // Many external submitters racing against the workers: every submitted
  // task must run exactly once.
  std::atomic<int> Count{0};
  constexpr int Submitters = 8;
  constexpr int PerSubmitter = 500;
  {
    ThreadPool Pool(4);
    std::vector<std::thread> Threads;
    for (int T = 0; T < Submitters; ++T)
      Threads.emplace_back([&Pool, &Count] {
        for (int I = 0; I < PerSubmitter; ++I)
          Pool.submit([&Count] { ++Count; });
      });
    for (std::thread &T : Threads)
      T.join();
    Pool.wait();
  }
  EXPECT_EQ(Count.load(), Submitters * PerSubmitter);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  std::vector<int> Order;
  {
    ThreadPool Pool(1);
    for (int I = 0; I < 100; ++I)
      Pool.submit([&Order, I] { Order.push_back(I); });
    Pool.wait();
  }
  ASSERT_EQ(Order.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // Destroying the pool with work still queued must run everything first.
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++Count;
      });
    // No wait(): the destructor must drain.
  }
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPoolTest, WaitBlocksUntilAllDone) {
  std::atomic<int> Count{0};
  ThreadPool Pool(4);
  for (int I = 0; I < 32; ++I)
    Pool.submit([&Count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++Count;
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 32);
  // wait() with nothing outstanding returns immediately.
  Pool.wait();
  EXPECT_EQ(Count.load(), 32);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  std::atomic<int> Count{0};
  ThreadPool Pool(2);
  for (int I = 0; I < 8; ++I)
    Pool.submit([&Pool, &Count] {
      Pool.submit([&Count] { ++Count; });
      ++Count;
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 16);
}

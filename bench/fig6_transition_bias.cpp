//===- bench/fig6_transition_bias.cpp - Figure 6 --------------------------===//
//
// Regenerates Figure 6: the instantaneous misprediction rate (fraction of
// outcomes against the original bias direction) over the first 64
// executions after a site leaves the biased state.  The paper's findings:
// over 50% of evicted statics show bias below 30% in the transition
// vicinity, and ~20% become perfectly biased in the *other* direction
// (those are the only ones needing quick reaction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <iostream>
#include <iterator>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("fig6_transition_bias: Figure 6, misprediction rate around "
                 "transitions out of the biased state");
  addStandardOptions(Opts);
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Figure 6",
              "distribution of post-eviction misprediction rates over the "
              "64 executions after leaving the biased state (suite-wide)");

  // Collect transition records across the whole suite under the baseline.
  // The arena shares each benchmark's materialized trace with any other
  // invocation via --trace-cache-dir (one config per benchmark here, so
  // in-process reuse alone has nothing to amortize).
  const std::shared_ptr<workload::TraceArena> Arena = makeArena(Opt);
  std::vector<double> WrongRates;
  for (const WorkloadSpec &Spec : selectedSuite(Opt)) {
    ReactiveController C(scaledBaseline(Opts));
    const ControlStats &S =
        runBenchWorkload(C, Spec, Spec.refInput(), Arena.get());
    for (const TransitionRecord &T : S.Transitions)
      if (T.Observed > 0)
        WrongRates.push_back(static_cast<double>(T.AgainstOriginal) /
                             static_cast<double>(T.Observed));
  }
  std::sort(WrongRates.begin(), WrongRates.end());

  // Histogram over misprediction-rate bands (the figure's x axis).
  const double Bands[] = {0.1, 0.3, 0.5, 0.7, 0.9, 0.98, 1.0001};
  const char *Labels[] = {"<10%",  "10-30%", "30-50%",  "50-70%",
                          "70-90%", "90-98%", ">98% (full reversal)"};
  std::vector<unsigned> Counts(std::size(Bands), 0);
  for (double W : WrongRates) {
    for (size_t B = 0; B < std::size(Bands); ++B)
      if (W < Bands[B]) {
        ++Counts[B];
        break;
      }
  }

  Table Out({"post-eviction misprediction rate", "transitions",
             "fraction", "cumulative"});
  const double Total = std::max<size_t>(WrongRates.size(), 1);
  double Cum = 0.0;
  for (size_t B = 0; B < std::size(Bands); ++B) {
    const double Frac = Counts[B] / Total;
    Cum += Frac;
    Out.row()
        .cell(Labels[B])
        .cell(static_cast<uint64_t>(Counts[B]))
        .cellPercent(Frac)
        .cellPercent(Cum);
  }
  Out.print(std::cout, Opt.Csv);

  // The paper's two headline fractions.
  const double Above30 =
      static_cast<double>(std::count_if(WrongRates.begin(), WrongRates.end(),
                                        [](double W) { return W > 0.70; })) /
      Total;
  const double FullReversal =
      static_cast<double>(std::count_if(WrongRates.begin(), WrongRates.end(),
                                        [](double W) { return W > 0.98; })) /
      Total;
  std::cout << "\ntransitions observed: " << WrongRates.size()
            << "\nfraction with bias < 30% in original direction "
               "(paper: >50%): "
            << formatPercent(Above30)
            << "\nfraction perfectly reversed (paper: ~20%): "
            << formatPercent(FullReversal) << "\n";
  return 0;
}

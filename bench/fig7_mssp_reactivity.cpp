//===- bench/fig7_mssp_reactivity.cpp - Figure 7 --------------------------===//
//
// Regenerates Figure 7: MSSP performance with closed-loop (eviction arc
// present) vs open-loop (no eviction) speculation control, for monitor
// periods of 1k and 10k executions, normalized to a plain superscalar
// execution of the original program on the leading core.
//
// Series (the paper's marks): B = baseline superscalar (1.0 by
// definition), o/c = open/closed loop with 1k monitoring, O/C = open/
// closed with 10k.  Like the paper's 200M-instruction runs, these runs
// are short; speedups are lower bounds.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mssp/MsspSimulator.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

bool GValueSpec = false;

MsspResult runOne(const workload::BenchmarkProfile &Profile,
                  uint64_t Iterations, bool Eviction,
                  uint64_t MonitorPeriod) {
  const SynthSpec Spec = makeSynthSpecFor(Profile, Iterations);
  SynthProgram Program = synthesize(Spec);
  MsspConfig Cfg;
  Cfg.Control.MonitorPeriod = MonitorPeriod;
  Cfg.Control.EnableEviction = Eviction;
  // Short runs: scale the eviction counter and wait period with the
  // monitor (the paper's short-run desensitization note, Sec. 4.2).
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 100000;
  Cfg.OptLatencyCycles = 0; // Fig. 7 uses zero optimization latency
  if (GValueSpec) {
    Cfg.EnableValueSpeculation = true;
    Cfg.ValueControl = Cfg.Control;
  }
  MsspSimulator Sim(Program, Cfg);
  return Sim.run();
}

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Opts("fig7_mssp_reactivity: Figure 7, closed- vs open-loop "
                 "control in the MSSP timing simulation");
  addStandardOptions(Opts);
  Opts.addInt("iterations", 90000,
              "main-loop iterations per run (~70 original instructions "
              "each)");
  Opts.addFlag("value-spec",
               "also control load-value speculation reactively");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);
  const uint64_t Iterations =
      static_cast<uint64_t>(Opts.getInt("iterations"));
  GValueSpec = Opts.getFlag("value-spec");

  printBanner("Figure 7",
              "MSSP speedup over the superscalar baseline: open (o/O) vs "
              "closed (c/C) loop at 1k/10k monitor periods");

  Table Out({"bench", "o (open,1k)", "c (closed,1k)", "O (open,10k)",
             "C (closed,10k)", "squashes o/c", "distill ratio"});

  double Sums[4] = {0, 0, 0, 0};
  unsigned N = 0;
  for (const workload::BenchmarkProfile &P : selectedProfiles(Opt)) {
    const SynthSpec Spec = makeSynthSpecFor(P, Iterations);
    SynthProgram Program = synthesize(Spec);
    const uint64_t Baseline =
        simulateSuperscalarBaseline(Program, MachineConfig());

    const MsspResult Open1k = runOne(P, Iterations, false, 1000);
    const MsspResult Closed1k = runOne(P, Iterations, true, 1000);
    const MsspResult Open10k = runOne(P, Iterations, false, 10000);
    const MsspResult Closed10k = runOne(P, Iterations, true, 10000);

    const double Speedups[4] = {
        static_cast<double>(Baseline) / Open1k.TotalCycles,
        static_cast<double>(Baseline) / Closed1k.TotalCycles,
        static_cast<double>(Baseline) / Open10k.TotalCycles,
        static_cast<double>(Baseline) / Closed10k.TotalCycles,
    };
    for (int I = 0; I < 4; ++I)
      Sums[I] += Speedups[I];
    ++N;

    Out.row()
        .cell(P.Name)
        .cell(Speedups[0], 3)
        .cell(Speedups[1], 3)
        .cell(Speedups[2], 3)
        .cell(Speedups[3], 3)
        .cell(std::to_string(Open1k.TaskSquashes) + "/" +
              std::to_string(Closed1k.TaskSquashes))
        .cell(Closed1k.distillationRatio(), 3);
  }
  if (N > 1)
    Out.row()
        .cell("geomean-ish (avg)")
        .cell(Sums[0] / N, 3)
        .cell(Sums[1] / N, 3)
        .cell(Sums[2] / N, 3)
        .cell(Sums[3] / N, 3)
        .cell("-")
        .cell("-");

  Out.print(std::cout, Opt.Csv);
  return 0;
}

//===- bench/fig7_mssp_reactivity.cpp - Figure 7 --------------------------===//
//
// Regenerates Figure 7: MSSP performance with closed-loop (eviction arc
// present) vs open-loop (no eviction) speculation control, for monitor
// periods of 1k and 10k executions, normalized to a plain superscalar
// execution of the original program on the leading core.
//
// Series (the paper's marks): B = baseline superscalar (1.0 by
// definition), o/c = open/closed loop with 1k monitoring, O/C = open/
// closed with 10k.  Like the paper's 200M-instruction runs, these runs
// are short; speedups are lower bounds.
//
// The grid (benchmark x {baseline, o, c, O, C}) is an ExperimentPlan of
// task cells: every cell synthesizes its own program and runs its own
// simulation, so --jobs parallelizes them with output bit-identical to a
// serial run.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mssp/MsspSimulator.h"
#include "support/Table.h"

#include <any>
#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::engine;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

/// One MSSP cell: synthesize the benchmark's program and simulate under
/// the given control loop.
MsspResult runOne(const CellContext &Ctx, uint64_t Iterations, bool Eviction,
                  uint64_t MonitorPeriod, bool ValueSpec, ExecTier Tier) {
  SynthProgram Program = synthesize(msspSynthSpec(Ctx, Iterations));
  MsspConfig Cfg;
  Cfg.Tier = Tier;
  Cfg.Control.MonitorPeriod = MonitorPeriod;
  Cfg.Control.EnableEviction = Eviction;
  // Short runs: scale the eviction counter and wait period with the
  // monitor (the paper's short-run desensitization note, Sec. 4.2).
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 100000;
  Cfg.OptLatencyCycles = 0; // Fig. 7 uses zero optimization latency
  if (ValueSpec) {
    Cfg.EnableValueSpeculation = true;
    Cfg.ValueControl = Cfg.Control;
  }
  MsspSimulator Sim(Program, Cfg);
  return Sim.run();
}

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Opts("fig7_mssp_reactivity: Figure 7, closed- vs open-loop "
                 "control in the MSSP timing simulation");
  addStandardOptions(Opts);
  Opts.addInt("iterations", 90000,
              "main-loop iterations per run (~70 original instructions "
              "each)");
  Opts.addFlag("value-spec",
               "also control load-value speculation reactively");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);
  const uint64_t Iterations =
      static_cast<uint64_t>(Opts.getInt("iterations"));
  const bool ValueSpec = Opts.getFlag("value-spec");

  printBanner("Figure 7",
              "MSSP speedup over the superscalar baseline: open (o/O) vs "
              "closed (c/C) loop at 1k/10k monitor periods");

  const ExecTier Tier = Opt.Tier;
  ExperimentPlan Plan = msspSuitePlan(Opt);
  Plan.addTaskConfig("baseline", [Iterations, Tier](const CellContext &Ctx) {
    SynthProgram Program = synthesize(msspSynthSpec(Ctx, Iterations));
    return std::any(
        simulateSuperscalarBaseline(Program, MachineConfig(), 0, Tier));
  });
  const struct {
    const char *Name;
    bool Eviction;
    uint64_t Monitor;
  } Series[4] = {{"open-1k", false, 1000},
                 {"closed-1k", true, 1000},
                 {"open-10k", false, 10000},
                 {"closed-10k", true, 10000}};
  for (const auto &S : Series)
    Plan.addTaskConfig(
        S.Name, [Iterations, ValueSpec, Tier, &S](const CellContext &Ctx) {
          return std::any(runOne(Ctx, Iterations, S.Eviction, S.Monitor,
                                 ValueSpec, Tier));
        });

  const RunReport Report = runSuite(Plan, Opt);
  if (!checkReport(Report))
    return 1;

  Table Out({"bench", "o (open,1k)", "c (closed,1k)", "O (open,10k)",
             "C (closed,10k)", "squashes o/c", "distill ratio"});

  double Sums[4] = {0, 0, 0, 0};
  unsigned N = 0;
  for (uint32_t B = 0; B < Plan.benchmarks().size(); ++B) {
    const uint64_t Baseline =
        std::any_cast<uint64_t>(Report.cell(B, 0, 0).Value);
    const MsspResult Runs[4] = {
        std::any_cast<MsspResult>(Report.cell(B, 0, 1).Value),
        std::any_cast<MsspResult>(Report.cell(B, 0, 2).Value),
        std::any_cast<MsspResult>(Report.cell(B, 0, 3).Value),
        std::any_cast<MsspResult>(Report.cell(B, 0, 4).Value)};

    double Speedups[4];
    for (int I = 0; I < 4; ++I) {
      Speedups[I] =
          static_cast<double>(Baseline) / Runs[I].TotalCycles;
      Sums[I] += Speedups[I];
    }
    ++N;

    Out.row()
        .cell(Plan.benchmarks()[B].Spec.Name)
        .cell(Speedups[0], 3)
        .cell(Speedups[1], 3)
        .cell(Speedups[2], 3)
        .cell(Speedups[3], 3)
        .cell(std::to_string(Runs[0].TaskSquashes) + "/" +
              std::to_string(Runs[1].TaskSquashes))
        .cell(Runs[1].distillationRatio(), 3);
  }
  if (N > 1)
    Out.row()
        .cell("geomean-ish (avg)")
        .cell(Sums[0] / N, 3)
        .cell(Sums[1] / N, 3)
        .cell(Sums[2] / N, 3)
        .cell(Sums[3] / N, 3)
        .cell("-")
        .cell("-");

  Out.print(std::cout, Opt.Csv);
  return 0;
}

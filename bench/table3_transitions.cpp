//===- bench/table3_transitions.cpp - Table 3 -----------------------------===//
//
// Regenerates Table 3: per-benchmark model transition data under the
// baseline reactive configuration -- touched statics, statics that enter
// the biased state, statics evicted, total evictions, % of dynamic
// branches speculated, and the mean distance between misspeculations.
// The paper's values are printed alongside for comparison (static counts
// are population-scaled; see --site-scale).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "support/Format.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("table3_transitions: Table 3, model transition data");
  addStandardOptions(Opts);
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Table 3",
              "model transition data, baseline reactive config (paper "
              "values in parentheses; statics scaled by --site-scale)");

  Table Out({"bench", "touch", "bias", "evict", "total evicts", "% spec.",
             "misspec dist.", "requests", "suppressed"});

  double SumBiasFrac = 0, SumEvictFrac = 0, SumSpec = 0, SumDist = 0;
  uint64_t SumEvicts = 0;
  unsigned N = 0;

  // One config per benchmark, so the arena pays off across invocations
  // (--trace-cache-dir) rather than within this one.
  const std::shared_ptr<workload::TraceArena> Arena = makeArena(Opt);
  for (const WorkloadSpec &Spec : selectedSuite(Opt)) {
    ReactiveController C(scaledBaseline(Opts));
    const ControlStats &S =
        runBenchWorkload(C, Spec, Spec.refInput(), Arena.get());
    const workload::BenchmarkProfile &P = profileByName(Spec.Name);
    auto WithPaper = [](uint64_t Ours, uint32_t PaperValue) {
      return std::to_string(Ours) + " (" + std::to_string(PaperValue) + ")";
    };
    Out.row()
        .cell(Spec.Name)
        .cell(WithPaper(S.touchedCount(), P.PaperTouch))
        .cell(WithPaper(S.everBiasedCount(), P.PaperBias))
        .cell(WithPaper(S.evictedSiteCount(), P.PaperEvictStatics))
        .cell(WithPaper(S.Evictions, P.PaperTotalEvicts))
        .cell(formatPercent(S.correctRate(), 1) + " (" +
              formatPercent(P.PaperSpecShare, 1) + ")")
        .cell(formatWithCommas(
            static_cast<uint64_t>(S.misspecDistance())))
        .cell(S.DeployRequests + S.RevokeRequests)
        .cell(S.SuppressedRequests);

    SumBiasFrac += static_cast<double>(S.everBiasedCount()) /
                   std::max(1u, S.touchedCount());
    SumEvictFrac += static_cast<double>(S.evictedSiteCount()) /
                    std::max(1u, S.touchedCount());
    SumSpec += S.correctRate();
    SumDist += S.misspecDistance();
    SumEvicts += S.Evictions;
    ++N;
  }

  if (N > 1) {
    Out.row()
        .cell("ave")
        .cell("")
        .cell(formatPercent(SumBiasFrac / N, 0) + " (34%)")
        .cell(formatPercent(SumEvictFrac / N, 1) + " (2%)")
        .cell(std::to_string(SumEvicts / N) + " (76)")
        .cell(formatPercent(SumSpec / N, 1) + " (44.8%)")
        .cell(formatWithCommas(static_cast<uint64_t>(SumDist / N)) +
              " (65,000)")
        .cell("")
        .cell("");
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

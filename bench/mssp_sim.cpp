//===- bench/mssp_sim.cpp - MSSP simulation-throughput microbenches -------===//
//
// google-benchmark microbenches for the MSSP timing simulation's fast
// path.  Every benchmark runs the Figure 7 default workload (bzip2,
// closed-loop control at a 1k monitor period) end to end and reports
// simulator throughput as tasks/sec (items) plus simulated cycles/sec;
// the benchmark argument is a bitmask over MsspFastPath so each
// optimization can be measured alone and combined:
//
//   bit 0 = IncrementalDigest (dirty-set verification + static dispatch)
//   bit 1 = MemoizedDistill   (request-keyed code cache)
//   bit 2 = DenseTables       (vector/flat-hash speculation tables)
//
// Arg(0) is the legacy reference path, Arg(7) the full fast path.  The
// golden suite (tests/mssp/MsspGoldenTest.cpp) pins every mask to
// bit-identical MsspResults, so any throughput difference here is free.
//
// The value-speculation variant doubles the controller load (every region
// load feeds the value-invariance FSM), which is where DenseTables'
// per-load site lookup matters most.
//
//===----------------------------------------------------------------------===//

#include "mssp/MsspSimulator.h"
#include "support/RunConfig.h"
#include "workload/SpecSuite.h"

#include <benchmark/benchmark.h>

using namespace specctrl;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

/// Figure 7's default per-run length.
constexpr uint64_t Fig7Iterations = 90000;

const SynthProgram &fig7Program() {
  static const SynthProgram Program =
      synthesize(makeSynthSpecFor(profileByName("bzip2"), Fig7Iterations));
  return Program;
}

MsspConfig fig7Config(int Mask, bool ValueSpec) {
  MsspConfig Cfg;
  // SPECCTRL_EXEC_TIER=threaded swaps in the pre-decoded backend; the
  // golden suite pins both tiers to identical MsspResults, so any
  // throughput delta here is free (bench/exec_tier.cpp measures both
  // side by side).
  Cfg.Tier = RunConfig::global().Tier;
  Cfg.Control.MonitorPeriod = 1000;
  Cfg.Control.EnableEviction = true;
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 100000;
  Cfg.OptLatencyCycles = 0;
  if (ValueSpec) {
    Cfg.EnableValueSpeculation = true;
    Cfg.ValueControl = Cfg.Control;
  }
  Cfg.FastPath.IncrementalDigest = (Mask & 1) != 0;
  Cfg.FastPath.MemoizedDistill = (Mask & 2) != 0;
  Cfg.FastPath.DenseTables = (Mask & 4) != 0;
  return Cfg;
}

void reportMssp(benchmark::State &State, const MsspResult &R) {
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(R.Tasks));
  State.counters["sim_cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(R.TotalCycles) * State.iterations(),
      benchmark::Counter::kIsRate);
  State.counters["sim_insts_per_sec"] = benchmark::Counter(
      static_cast<double>(R.MasterInstructions + R.CheckerInstructions) *
          State.iterations(),
      benchmark::Counter::kIsRate);
  const uint64_t Rebuilds = R.DistillCacheHits + R.DistillCacheMisses;
  State.counters["distill_hit_rate"] = benchmark::Counter(
      Rebuilds ? static_cast<double>(R.DistillCacheHits) /
                     static_cast<double>(Rebuilds)
               : 0.0);
  State.counters["squashes"] =
      benchmark::Counter(static_cast<double>(R.TaskSquashes));
}

/// Fig. 7 default workload; Arg = MsspFastPath bitmask.
void BM_Mssp(benchmark::State &State) {
  const int Mask = static_cast<int>(State.range(0));
  MsspResult R;
  for (auto _ : State) {
    MsspSimulator Sim(fig7Program(), fig7Config(Mask, false));
    R = Sim.run();
    benchmark::DoNotOptimize(R.TotalCycles);
  }
  reportMssp(State, R);
}
BENCHMARK(BM_Mssp)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);

/// mcf's periodic-rich workload: the closed-loop FSM oscillates
/// (evict -> wait -> re-deploy the same assertion set), so the keyed code
/// cache gets real hits here (distill_hit_rate > 0 with bit 1 set),
/// unlike bzip2 whose assertion sets never recur.
void BM_MsspPeriodic(benchmark::State &State) {
  static const SynthProgram Program =
      synthesize(makeSynthSpecFor(profileByName("mcf"), Fig7Iterations));
  const int Mask = static_cast<int>(State.range(0));
  MsspResult R;
  for (auto _ : State) {
    MsspSimulator Sim(Program, fig7Config(Mask, false));
    R = Sim.run();
    benchmark::DoNotOptimize(R.TotalCycles);
  }
  reportMssp(State, R);
}
BENCHMARK(BM_MsspPeriodic)->Arg(0)->Arg(2)->Arg(7)
    ->Unit(benchmark::kMillisecond);

/// Same workload with reactive load-value speculation enabled.
void BM_MsspValueSpec(benchmark::State &State) {
  const int Mask = static_cast<int>(State.range(0));
  MsspResult R;
  for (auto _ : State) {
    MsspSimulator Sim(fig7Program(), fig7Config(Mask, true));
    R = Sim.run();
    benchmark::DoNotOptimize(R.TotalCycles);
  }
  reportMssp(State, R);
}
BENCHMARK(BM_MsspValueSpec)->Arg(0)->Arg(7)
    ->Unit(benchmark::kMillisecond);

/// The superscalar baseline simulation (one statically dispatched
/// interpreter pass with the leading core's timing model).
void BM_MsspBaseline(benchmark::State &State) {
  uint64_t Cycles = 0;
  for (auto _ : State) {
    Cycles = simulateSuperscalarBaseline(fig7Program(), MachineConfig(), 0,
                                         RunConfig::global().Tier);
    benchmark::DoNotOptimize(Cycles);
  }
  State.counters["sim_cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(Cycles) * State.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MsspBaseline)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

//===- bench/fig3_changing_branches.cpp - Figure 3 ------------------------===//
//
// Regenerates Figure 3: branch bias averaged over blocks of 1000 dynamic
// instances for static branches (default: five, from gap) that look
// perfectly biased for at least their first 20,000 executions and then
// change behavior -- from the outcome stream alone they are
// indistinguishable from truly biased branches until the change hits.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/BiasSeries.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::profile;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("fig3_changing_branches: Figure 3, initially-invariant "
                 "branches that later change");
  addStandardOptions(Opts);
  Opts.addString("bench", "gap", "which benchmark to sample");
  Opts.addInt("tracks", 5, "number of changing branches to plot");
  Opts.addInt("block", 1000, "bias-averaging block size (executions)");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  const WorkloadSpec Spec =
      makeBenchmark(Opts.getString("bench"), Opt.Scale);
  const unsigned Tracks = static_cast<unsigned>(Opts.getInt("tracks"));
  const uint64_t Block = static_cast<uint64_t>(Opts.getInt("block"));

  printBanner("Figure 3",
              "per-branch bias over blocks of " + std::to_string(Block) +
                  " instances, " + Spec.Name +
                  " branches biased for >= 20k executions then changing");

  // Pick changing sites whose change point is late enough (>= 20k execs).
  std::vector<SiteId> Chosen;
  for (SiteId S = 0; S < Spec.numSites() && Chosen.size() < Tracks; ++S) {
    const BehaviorSpec &B = Spec.Sites[S].Behavior;
    const bool LateChange =
        ((B.Kind == BehaviorKind::FlipAt || B.Kind == BehaviorKind::Soften) &&
         B.ChangeAt >= 20000) ||
        B.Kind == BehaviorKind::InductionFlip;
    if (LateChange)
      Chosen.push_back(S);
  }

  BiasSeriesCollector Collector(Chosen, Block);
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  while (Gen.next(E))
    Collector.addOutcome(E.Site, E.Taken, E.Index);
  Collector.finish(Gen.eventsGenerated());

  Table Out({"site", "behavior", "instances", "bias (block avg)"});
  for (size_t T = 0; T < Chosen.size(); ++T) {
    const auto &Series = Collector.series(T);
    // Subsample long series to ~24 printed points.
    const size_t Step = std::max<size_t>(1, Series.size() / 24);
    for (size_t I = 0; I < Series.size(); I += Step) {
      const double Taken = Series[I].TakenFraction;
      Out.row()
          .cell("site " + std::to_string(Chosen[T]))
          .cell(behaviorKindName(Spec.Sites[Chosen[T]].Behavior.Kind))
          .cell(static_cast<uint64_t>((I + 1) * Block))
          .cellPercent(std::max(Taken, 1.0 - Taken));
    }
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

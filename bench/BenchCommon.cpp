//===- bench/BenchCommon.cpp - Shared bench-harness plumbing --------------===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace specctrl;
using namespace specctrl::bench;

void bench::addStandardOptions(OptionSet &Opts) {
  Opts.addFlag("csv", "emit CSV instead of aligned text tables");
  Opts.addInt("opt-latency", 10000,
              "re-optimization latency in dynamic instructions (Table 2's "
              "1M rescaled to the compressed default run lengths)");
  Opts.addInt("wait-period", 50000,
              "unbiased-state wait period in executions (Table 2's 1M "
              "rescaled: at paper scale hot sites execute billions of "
              "times, here hundreds of thousands)");
  Opts.addDouble("events-per-billion", 6.0e5,
                 "branch events generated per billion paper-run "
                 "instructions (run-length scale)");
  Opts.addDouble("site-scale", 0.25,
                 "fraction of the paper's static branch population");
  Opts.addString("benchmarks", "",
                 "comma-separated benchmark subset (default: all twelve)");
}

SuiteOptions bench::readSuiteOptions(const OptionSet &Opts) {
  SuiteOptions Out;
  Out.Csv = Opts.getFlag("csv");
  Out.Scale.EventsPerBillion = Opts.getDouble("events-per-billion");
  Out.Scale.SiteScale = Opts.getDouble("site-scale");
  const std::string &List = Opts.getString("benchmarks");
  size_t Pos = 0;
  while (Pos < List.size()) {
    const size_t Comma = List.find(',', Pos);
    const size_t End = Comma == std::string::npos ? List.size() : Comma;
    if (End > Pos)
      Out.Benchmarks.push_back(List.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  return Out;
}

std::vector<workload::BenchmarkProfile>
bench::selectedProfiles(const SuiteOptions &Opt) {
  std::vector<workload::BenchmarkProfile> Out;
  for (const workload::BenchmarkProfile &P : workload::suiteProfiles()) {
    if (Opt.Benchmarks.empty()) {
      Out.push_back(P);
      continue;
    }
    for (const std::string &Name : Opt.Benchmarks)
      if (Name == P.Name) {
        Out.push_back(P);
        break;
      }
  }
  return Out;
}

std::vector<workload::WorkloadSpec>
bench::selectedSuite(const SuiteOptions &Opt) {
  std::vector<workload::WorkloadSpec> Suite;
  for (const workload::BenchmarkProfile &P : selectedProfiles(Opt))
    Suite.push_back(workload::makeBenchmark(P, Opt.Scale));
  return Suite;
}

profile::BranchProfile
bench::collectProfile(const workload::WorkloadSpec &Spec,
                      const workload::InputConfig &Input) {
  profile::BranchProfile P(Spec.numSites());
  workload::TraceGenerator Gen(Spec, Input);
  workload::BranchEvent E;
  while (Gen.next(E))
    P.addOutcome(E.Site, E.Taken);
  return P;
}

core::ReactiveConfig bench::scaledBaseline(const OptionSet &Opts) {
  core::ReactiveConfig C = core::ReactiveConfig::baseline();
  C.OptLatency = static_cast<uint64_t>(Opts.getInt("opt-latency"));
  C.WaitPeriod = static_cast<uint64_t>(Opts.getInt("wait-period"));
  return C;
}

void bench::printBanner(const std::string &Title, const std::string &Detail) {
  std::printf("# %s\n# %s\n#\n", Title.c_str(), Detail.c_str());
}

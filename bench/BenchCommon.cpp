//===- bench/BenchCommon.cpp - Shared bench-harness plumbing --------------===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace specctrl;
using namespace specctrl::bench;

void bench::addScaleOptions(OptionSet &Opts) {
  Opts.addDouble("events-per-billion", 6.0e5,
                 "branch events generated per billion paper-run "
                 "instructions (run-length scale)");
  Opts.addDouble("site-scale", 0.25,
                 "fraction of the paper's static branch population");
}

workload::SuiteScale bench::readScale(const OptionSet &Opts) {
  workload::SuiteScale Scale;
  Scale.EventsPerBillion = Opts.getDouble("events-per-billion");
  Scale.SiteScale = Opts.getDouble("site-scale");
  return Scale;
}

void bench::addStandardOptions(OptionSet &Opts) {
  Opts.addFlag("csv", "emit CSV instead of aligned text tables");
  Opts.addInt("opt-latency", 10000,
              "re-optimization latency in dynamic instructions (Table 2's "
              "1M rescaled to the compressed default run lengths)");
  Opts.addInt("wait-period", 50000,
              "unbiased-state wait period in executions (Table 2's 1M "
              "rescaled: at paper scale hot sites execute billions of "
              "times, here hundreds of thousands)");
  Opts.addInt("jobs", 0,
              "worker threads for experiment cells (0 = hardware "
              "concurrency; results are identical at any value)");
  Opts.addInt("seed", 0, "base seed mixed into every experiment cell");
  Opts.addFlag("no-trace-arena",
               "re-synthesize each sweep cell's trace instead of sharing "
               "one materialization (results are identical either way)");
  Opts.addString("trace-cache-dir", "",
                 "disk tier for the trace arena: materialized traces are "
                 "written here as v2 trace files and reused across "
                 "invocations");
  Opts.addString("exec-tier", "",
                 "SimIR execution backend: reference|threaded|fused "
                 "(default SPECCTRL_EXEC_TIER, else reference; results "
                 "are bit-identical across all tiers)");
  Opts.addFlag("verify-distill",
               "verify every distilled code version before dispatch "
               "(SPECCTRL_VERIFY)");
  Opts.addFlag("arena-verbose",
               "log each trace-arena materialization to stderr "
               "(SPECCTRL_ARENA_VERBOSE)");
  addScaleOptions(Opts);
  Opts.addString("benchmarks", "",
                 "comma-separated benchmark subset (default: all twelve)");
}

SuiteOptions bench::readSuiteOptions(const OptionSet &Opts) {
  SuiteOptions Out;
  Out.Csv = Opts.getFlag("csv");
  Out.Scale = readScale(Opts);
  Out.Benchmarks = splitList(Opts.getString("benchmarks"));
  Out.Jobs = static_cast<unsigned>(Opts.getInt("jobs"));
  Out.Seed = static_cast<uint64_t>(Opts.getInt("seed"));
  Out.UseTraceArena = !Opts.getFlag("no-trace-arena");
  Out.TraceCacheDir = Opts.getString("trace-cache-dir");

  // CLI overrides layer on top of the environment-parsed RunConfig and
  // are pushed back into the process-wide config so libraries that read
  // RunConfig::global() (distill verifier, trace arena, backend
  // factories) see the same values as the bench.
  RunConfig Cfg = RunConfig::global();
  const std::string TierName = Opts.getString("exec-tier");
  if (!TierName.empty() && !parseExecTier(TierName, Cfg.Tier)) {
    std::fprintf(stderr,
                 "specctrl: --exec-tier=%s is not a tier "
                 "(reference|threaded); keeping %s\n",
                 TierName.c_str(), execTierName(Cfg.Tier));
  }
  if (Opts.getFlag("verify-distill"))
    Cfg.VerifyDistill = true;
  if (Opts.getFlag("arena-verbose"))
    Cfg.ArenaVerbose = true;
  RunConfig::setGlobal(Cfg);
  Out.Tier = Cfg.Tier;
  return Out;
}

std::shared_ptr<workload::TraceArena>
bench::makeArena(const SuiteOptions &Opt) {
  if (!Opt.UseTraceArena)
    return nullptr;
  workload::TraceArena::Config Cfg;
  Cfg.CacheDir = Opt.TraceCacheDir;
  return std::make_shared<workload::TraceArena>(std::move(Cfg));
}

const core::ControlStats &
bench::runBenchWorkload(core::SpeculationController &Controller,
                        const workload::WorkloadSpec &Spec,
                        const workload::InputConfig &Input,
                        workload::TraceArena *Arena) {
  if (Arena)
    return core::runWorkload(Controller, Spec, Input, *Arena);
  return core::runWorkload(Controller, Spec, Input);
}

std::vector<workload::BenchmarkProfile>
bench::selectedProfiles(const SuiteOptions &Opt) {
  std::vector<workload::BenchmarkProfile> Out;
  for (const workload::BenchmarkProfile &P : workload::suiteProfiles()) {
    if (Opt.Benchmarks.empty()) {
      Out.push_back(P);
      continue;
    }
    for (const std::string &Name : Opt.Benchmarks)
      if (Name == P.Name) {
        Out.push_back(P);
        break;
      }
  }
  return Out;
}

std::vector<workload::WorkloadSpec>
bench::selectedSuite(const SuiteOptions &Opt) {
  std::vector<workload::WorkloadSpec> Suite;
  for (const workload::BenchmarkProfile &P : selectedProfiles(Opt))
    Suite.push_back(workload::makeBenchmark(P, Opt.Scale));
  return Suite;
}

engine::ExperimentPlan bench::suitePlan(const SuiteOptions &Opt) {
  engine::ExperimentPlan Plan;
  Plan.setBaseSeed(Opt.Seed);
  Plan.setTraceArena(makeArena(Opt));
  for (workload::WorkloadSpec &Spec : selectedSuite(Opt))
    Plan.addBenchmark(std::move(Spec));
  return Plan;
}

engine::RunReport bench::runSuite(const engine::ExperimentPlan &Plan,
                                  const SuiteOptions &Opt) {
  engine::RunOptions Run;
  Run.Jobs = Opt.Jobs;
  return engine::runPlan(Plan, Run);
}

engine::ExperimentPlan bench::msspSuitePlan(const SuiteOptions &Opt) {
  engine::ExperimentPlan Plan;
  Plan.setBaseSeed(Opt.Seed);
  for (const workload::BenchmarkProfile &P : selectedProfiles(Opt))
    Plan.addBenchmark(workload::makeBenchmark(P, Opt.Scale));
  return Plan;
}

const workload::BenchmarkProfile &
bench::msspCellProfile(const engine::CellContext &Ctx) {
  return workload::profileByName(Ctx.Spec.Name);
}

workload::SynthSpec bench::msspSynthSpec(const engine::CellContext &Ctx,
                                         uint64_t Iterations) {
  workload::SynthSpec Spec =
      workload::makeSynthSpecFor(msspCellProfile(Ctx), Iterations);
  if (Ctx.BaseSeed != 0)
    Spec.Seed ^= Ctx.Seed;
  return Spec;
}

bool bench::checkReport(const engine::RunReport &Report) {
  bool Ok = true;
  for (const engine::CellResult &Cell : Report.Cells)
    if (Cell.Failed) {
      std::fprintf(stderr, "error: cell %s/%s/%s failed: %s\n",
                   Cell.Benchmark.c_str(), Cell.Input.c_str(),
                   Cell.Config.c_str(), Cell.Error.c_str());
      Ok = false;
    }
  return Ok;
}

profile::BranchProfile
bench::collectProfile(const workload::WorkloadSpec &Spec,
                      const workload::InputConfig &Input) {
  profile::BranchProfile P(Spec.numSites());
  workload::TraceGenerator Gen(Spec, Input);
  workload::BranchEvent E;
  while (Gen.next(E))
    P.addOutcome(E.Site, E.Taken);
  return P;
}

core::ReactiveConfig bench::scaledBaseline(const OptionSet &Opts) {
  core::ReactiveConfig C = core::ReactiveConfig::baseline();
  C.OptLatency = static_cast<uint64_t>(Opts.getInt("opt-latency"));
  C.WaitPeriod = static_cast<uint64_t>(Opts.getInt("wait-period"));
  return C;
}

void bench::printBanner(const std::string &Title, const std::string &Detail) {
  std::printf("# %s\n# %s\n#\n", Title.c_str(), Detail.c_str());
}

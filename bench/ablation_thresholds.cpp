//===- bench/ablation_thresholds.cpp - Design-choice ablations ------------===//
//
// Ablation study for the two Table 2 parameters the paper motivates but
// does not sweep explicitly (DESIGN.md §5 items 2-3):
//
//  * selection threshold -- why 99.5% and not the 99% evaluation target:
//    the hysteresis margin between selection (99.5%) and eviction (~98%)
//    absorbs sampling noise; lowering the selection threshold admits
//    borderline sites that churn, raising it forfeits benefit;
//  * monitor period -- the false-positive filter: shorter monitors admit
//    briefly-biased sites (misspeculation), longer monitors burn benefit.
//
// Suite-average correct/incorrect rates per setting.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("ablation_thresholds: selection-threshold and "
                 "monitor-period sweeps around the Table 2 defaults");
  addStandardOptions(Opts);
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Ablation: thresholds",
              "suite-average rates while sweeping the selection threshold "
              "and the monitor period (all else Table 2)");

  const std::vector<WorkloadSpec> Suite = selectedSuite(Opt);
  const ReactiveConfig Base = scaledBaseline(Opts);

  // Ten sweep settings replay the same twelve reference traces, so the
  // arena materializes each benchmark once and every setting after the
  // first is pure replay.
  const std::shared_ptr<workload::TraceArena> Arena = makeArena(Opt);
  auto RunAverage = [&Suite, &Arena](const ReactiveConfig &Config,
                                     double &Correct, double &Incorrect,
                                     uint64_t &Requests) {
    Correct = Incorrect = 0.0;
    Requests = 0;
    for (const WorkloadSpec &Spec : Suite) {
      ReactiveController C(Config);
      const ControlStats &S =
          runBenchWorkload(C, Spec, Spec.refInput(), Arena.get());
      Correct += S.correctRate();
      Incorrect += S.incorrectRate();
      Requests += S.DeployRequests + S.RevokeRequests;
    }
    Correct /= static_cast<double>(Suite.size());
    Incorrect /= static_cast<double>(Suite.size());
  };

  {
    Table Out({"selection threshold", "correct", "incorrect", "requests"});
    for (double T : {0.98, 0.99, 0.995, 0.998, 0.9995}) {
      ReactiveConfig C = Base;
      C.SelectThreshold = T;
      double Correct = 0, Incorrect = 0;
      uint64_t Requests = 0;
      RunAverage(C, Correct, Incorrect, Requests);
      Out.row()
          .cellPercent(T, 2)
          .cellPercent(Correct)
          .cellPercent(Incorrect, 4)
          .cell(Requests);
    }
    Out.print(std::cout, Opt.Csv);
  }

  std::cout << '\n';

  {
    Table Out({"monitor period", "correct", "incorrect", "requests"});
    for (uint64_t Period : {uint64_t(1000), uint64_t(3000), uint64_t(10000),
                            uint64_t(30000), uint64_t(100000)}) {
      ReactiveConfig C = Base;
      C.MonitorPeriod = Period;
      double Correct = 0, Incorrect = 0;
      uint64_t Requests = 0;
      RunAverage(C, Correct, Incorrect, Requests);
      Out.row()
          .cell(Period)
          .cellPercent(Correct)
          .cellPercent(Incorrect, 4)
          .cell(Requests);
    }
    Out.print(std::cout, Opt.Csv);
  }
  return 0;
}

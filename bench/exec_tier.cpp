//===- bench/exec_tier.cpp - Execution-backend throughput microbenches ----===//
//
// google-benchmark microbenches comparing the two SimIR execution tiers
// behind fsim::ExecBackend (the PR-6 tentpole):
//
//   reference  the seed switch-dispatch interpreter (fsim::Interpreter),
//              kept verbatim as the bit-exactness oracle;
//   threaded   the pre-decoded direct-threaded tier (exec/
//              ThreadedBackend) with superinstruction fusion for the
//              distiller's hot patterns.
//
// BM_ExecRegion is the headline number: the Figure 7 default workload
// (bzip2-like, 90k iterations) with every region distilled under its
// dominant-direction assertion set -- exactly the code the MSSP master
// executes -- run end to end on a bare backend with no observer.  Items
// are MSSP tasks (4 iterations each), so items_per_second is directly
// comparable against BM_Mssp's tasks/sec in BENCH_mssp.json.  The
// acceptance bar is threaded >= 5x that baseline.
//
// BM_ExecOriginal runs the undistilled program (the checker's side), and
// BM_MsspTier the full MSSP simulation under each tier, showing how much
// of the raw-dispatch win survives the timing model and task protocol.
// The equivalence suite (tests/exec/ExecBackendEquivalenceTest.cpp) and
// the fig7 golden CSV under --exec-tier threaded pin both tiers to
// bit-identical results, so every delta here is free throughput.
//
//===----------------------------------------------------------------------===//

#include "distill/Distiller.h"
#include "exec/ThreadedBackend.h"
#include "mssp/MsspSimulator.h"
#include "workload/SpecSuite.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace specctrl;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

/// Figure 7's default per-run length (matches bench/mssp_sim.cpp).
constexpr uint64_t Fig7Iterations = 90000;
/// MSSP default task granularity (MsspConfig::TaskIterations).
constexpr uint64_t TaskIters = 4;

const SynthProgram &fig7Program() {
  static const SynthProgram Program =
      synthesize(makeSynthSpecFor(profileByName("bzip2"), Fig7Iterations));
  return Program;
}

/// Each region distilled under its dominant-direction assertion set (the
/// steady-state code the MSSP master runs once the controller deploys).
const std::vector<distill::DistillResult> &fig7DistilledRegions() {
  static const std::vector<distill::DistillResult> Results = [] {
    const SynthProgram &P = fig7Program();
    std::vector<distill::DistillResult> Out;
    Out.reserve(P.RegionFunctions.size());
    for (uint32_t FuncId : P.RegionFunctions) {
      distill::DistillRequest Request;
      for (const SynthSiteInfo &Info : P.Sites)
        if (!Info.IsControlSite && Info.FunctionId == FuncId)
          Request.BranchAssertions[Info.Site] = Info.Behavior.BiasA >= 0.5;
      Out.push_back(
          distill::distillFunction(P.Mod.function(FuncId), Request));
    }
    return Out;
  }();
  return Results;
}

void reportExec(benchmark::State &State, uint64_t InstRet) {
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(
                              (Fig7Iterations + TaskIters - 1) / TaskIters));
  State.counters["sim_insts_per_sec"] = benchmark::Counter(
      static_cast<double>(InstRet) * State.iterations(),
      benchmark::Counter::kIsRate);
}

/// Distilled-region execution: the fig7 program with every region's
/// deployed code version installed, run to halt on a bare backend.
void BM_ExecRegion(benchmark::State &State, ExecTier Tier) {
  const SynthProgram &P = fig7Program();
  const std::vector<distill::DistillResult> &Regions =
      fig7DistilledRegions();
  uint64_t InstRet = 0;
  for (auto _ : State) {
    std::unique_ptr<fsim::ExecBackend> Backend =
        exec::createBackend(Tier, P.Mod, P.InitialMemory);
    for (size_t I = 0; I < Regions.size(); ++I)
      Backend->setCodeVersion(P.RegionFunctions[I], &Regions[I].Distilled);
    const fsim::StopReason Reason = Backend->run(~0ull >> 1);
    if (Reason != fsim::StopReason::Halted)
      State.SkipWithError("program did not halt");
    InstRet = Backend->instructionsRetired();
    benchmark::DoNotOptimize(InstRet);
  }
  reportExec(State, InstRet);
}
BENCHMARK_CAPTURE(BM_ExecRegion, reference, ExecTier::Reference)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExecRegion, threaded, ExecTier::Threaded)
    ->Unit(benchmark::kMillisecond);

/// The undistilled program (what the checker executes).
void BM_ExecOriginal(benchmark::State &State, ExecTier Tier) {
  const SynthProgram &P = fig7Program();
  uint64_t InstRet = 0;
  for (auto _ : State) {
    std::unique_ptr<fsim::ExecBackend> Backend =
        exec::createBackend(Tier, P.Mod, P.InitialMemory);
    const fsim::StopReason Reason = Backend->run(~0ull >> 1);
    if (Reason != fsim::StopReason::Halted)
      State.SkipWithError("program did not halt");
    InstRet = Backend->instructionsRetired();
    benchmark::DoNotOptimize(InstRet);
  }
  reportExec(State, InstRet);
}
BENCHMARK_CAPTURE(BM_ExecOriginal, reference, ExecTier::Reference)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExecOriginal, threaded, ExecTier::Threaded)
    ->Unit(benchmark::kMillisecond);

/// The full MSSP simulation (fig7 closed-loop defaults, full fast path)
/// under each tier: how much of the dispatch win survives the timing
/// model, digesting, and the task protocol.
void BM_MsspTier(benchmark::State &State, ExecTier Tier) {
  MsspConfig Cfg;
  Cfg.Tier = Tier;
  Cfg.Control.MonitorPeriod = 1000;
  Cfg.Control.EnableEviction = true;
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 100000;
  Cfg.OptLatencyCycles = 0;
  MsspResult R;
  for (auto _ : State) {
    MsspSimulator Sim(fig7Program(), Cfg);
    R = Sim.run();
    benchmark::DoNotOptimize(R.TotalCycles);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(R.Tasks));
  State.counters["sim_insts_per_sec"] = benchmark::Counter(
      static_cast<double>(R.MasterInstructions + R.CheckerInstructions) *
          State.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_MsspTier, reference, ExecTier::Reference)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MsspTier, threaded, ExecTier::Threaded)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

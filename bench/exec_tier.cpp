//===- bench/exec_tier.cpp - Execution-backend throughput microbenches ----===//
//
// google-benchmark microbenches comparing the two SimIR execution tiers
// behind fsim::ExecBackend (the PR-6 tentpole):
//
//   reference  the seed switch-dispatch interpreter (fsim::Interpreter),
//              kept verbatim as the bit-exactness oracle;
//   threaded   the pre-decoded direct-threaded tier (exec/
//              ThreadedBackend) with superinstruction fusion for the
//              distiller's hot patterns.
//
// BM_ExecRegion is the headline number: the Figure 7 default workload
// (bzip2-like, 90k iterations) with every region distilled under its
// dominant-direction assertion set -- exactly the code the MSSP master
// executes -- run end to end on a bare backend with no observer.  Items
// are MSSP tasks (4 iterations each), so items_per_second is directly
// comparable against BM_Mssp's tasks/sec in BENCH_mssp.json.  The
// acceptance bar is threaded >= 5x that baseline.
//
// BM_ExecOriginal runs the undistilled program (the checker's side), and
// BM_MsspTier the full MSSP simulation under each tier, showing how much
// of the raw-dispatch win survives the timing model and task protocol.
// The equivalence suite (tests/exec/ExecBackendEquivalenceTest.cpp) and
// the fig7 golden CSV under --exec-tier threaded pin both tiers to
// bit-identical results, so every delta here is free throughput.
//
// BM_TimedRegion is the timing-tier axis: the same distilled workload
// with a full CoreTiming model attached -- per-instruction virtual
// observer dispatch under reference/threaded versus the fused tier's
// block-charged runTimed loop (the PR-9 tentpole).  All three produce
// bit-identical cycle counts (tests/mssp/TimingFusedTest.cpp), so the
// fused delta is pure timing-model overhead removed.
//
//===----------------------------------------------------------------------===//

#include "distill/Distiller.h"
#include "exec/TimedRun.h"
#include "mssp/CoreTiming.h"
#include "mssp/MsspSimulator.h"
#include "workload/SpecSuite.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace specctrl;
using namespace specctrl::mssp;
using namespace specctrl::workload;

namespace {

/// Figure 7's default per-run length (matches bench/mssp_sim.cpp).
constexpr uint64_t Fig7Iterations = 90000;
/// MSSP default task granularity (MsspConfig::TaskIterations).
constexpr uint64_t TaskIters = 4;

const SynthProgram &fig7Program() {
  static const SynthProgram Program =
      synthesize(makeSynthSpecFor(profileByName("bzip2"), Fig7Iterations));
  return Program;
}

/// Each region distilled under its dominant-direction assertion set (the
/// steady-state code the MSSP master runs once the controller deploys).
const std::vector<distill::DistillResult> &fig7DistilledRegions() {
  static const std::vector<distill::DistillResult> Results = [] {
    const SynthProgram &P = fig7Program();
    std::vector<distill::DistillResult> Out;
    Out.reserve(P.RegionFunctions.size());
    for (uint32_t FuncId : P.RegionFunctions) {
      distill::DistillRequest Request;
      for (const SynthSiteInfo &Info : P.Sites)
        if (!Info.IsControlSite && Info.FunctionId == FuncId)
          Request.BranchAssertions[Info.Site] = Info.Behavior.BiasA >= 0.5;
      Out.push_back(
          distill::distillFunction(P.Mod.function(FuncId), Request));
    }
    return Out;
  }();
  return Results;
}

void reportExec(benchmark::State &State, uint64_t InstRet) {
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(
                              (Fig7Iterations + TaskIters - 1) / TaskIters));
  State.counters["sim_insts_per_sec"] = benchmark::Counter(
      static_cast<double>(InstRet) * State.iterations(),
      benchmark::Counter::kIsRate);
}

/// Distilled-region execution: the fig7 program with every region's
/// deployed code version installed, run to halt on a bare backend.
void BM_ExecRegion(benchmark::State &State, ExecTier Tier) {
  const SynthProgram &P = fig7Program();
  const std::vector<distill::DistillResult> &Regions =
      fig7DistilledRegions();
  uint64_t InstRet = 0;
  for (auto _ : State) {
    std::unique_ptr<fsim::ExecBackend> Backend =
        exec::createBackend(Tier, P.Mod, P.InitialMemory);
    for (size_t I = 0; I < Regions.size(); ++I)
      Backend->setCodeVersion(P.RegionFunctions[I], &Regions[I].Distilled);
    const fsim::StopReason Reason = Backend->run(~0ull >> 1);
    if (Reason != fsim::StopReason::Halted)
      State.SkipWithError("program did not halt");
    InstRet = Backend->instructionsRetired();
    benchmark::DoNotOptimize(InstRet);
  }
  reportExec(State, InstRet);
}
BENCHMARK_CAPTURE(BM_ExecRegion, reference, ExecTier::Reference)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExecRegion, threaded, ExecTier::Threaded)
    ->Unit(benchmark::kMillisecond);

/// The undistilled program (what the checker executes).
void BM_ExecOriginal(benchmark::State &State, ExecTier Tier) {
  const SynthProgram &P = fig7Program();
  uint64_t InstRet = 0;
  for (auto _ : State) {
    std::unique_ptr<fsim::ExecBackend> Backend =
        exec::createBackend(Tier, P.Mod, P.InitialMemory);
    const fsim::StopReason Reason = Backend->run(~0ull >> 1);
    if (Reason != fsim::StopReason::Halted)
      State.SkipWithError("program did not halt");
    InstRet = Backend->instructionsRetired();
    benchmark::DoNotOptimize(InstRet);
  }
  reportExec(State, InstRet);
}
BENCHMARK_CAPTURE(BM_ExecOriginal, reference, ExecTier::Reference)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExecOriginal, threaded, ExecTier::Threaded)
    ->Unit(benchmark::kMillisecond);

/// Event-only timing policy for runTimed: what the fused tier feeds
/// CoreTiming instead of per-instruction virtual observer calls.
class TimingPolicy {
public:
  explicit TimingPolicy(CoreTiming &T) : T(T) {}
  void noteBranch(ir::SiteId Site, bool Taken, uint64_t) {
    T.recordBranch(Site, Taken);
  }
  void noteLoad(const fsim::InstLocation &, uint64_t Addr, uint64_t,
                uint64_t) {
    T.recordMemoryAccess(Addr);
  }
  void noteStore(uint64_t Addr, uint64_t) { T.recordMemoryAccess(Addr); }
  void noteCall(uint32_t Callee) { T.recordCall(Callee); }
  void noteReturn(uint32_t Callee) { T.recordReturn(Callee); }

private:
  CoreTiming &T;
};

/// The timing-tier axis: the distilled fig7 workload driving a full
/// leading-core CoreTiming model.  reference/threaded pay a virtual
/// ExecObserver call per retired instruction; fused charges straight-line
/// issue cost once per block and only touches the models at events.
void BM_TimedRegion(benchmark::State &State, ExecTier Tier) {
  const SynthProgram &P = fig7Program();
  const std::vector<distill::DistillResult> &Regions =
      fig7DistilledRegions();
  const MachineConfig M;
  uint64_t InstRet = 0;
  for (auto _ : State) {
    CacheModel L2(M.L2);
    CoreTiming Timing(M.Leading, &L2, M.L2.LatencyCycles,
                      M.MemoryLatencyCycles);
    fsim::StopReason Reason;
    if (Tier == ExecTier::TimingFused) {
      exec::ThreadedBackend Backend(P.Mod, P.InitialMemory);
      for (size_t I = 0; I < Regions.size(); ++I)
        Backend.setCodeVersion(P.RegionFunctions[I], &Regions[I].Distilled);
      TimingPolicy Policy(Timing);
      Reason = Backend.runTimed(~0ull >> 1, Policy);
      Timing.addInstructions(Backend.instructionsRetired());
      InstRet = Backend.instructionsRetired();
    } else {
      std::unique_ptr<fsim::ExecBackend> Backend =
          exec::createBackend(Tier, P.Mod, P.InitialMemory);
      for (size_t I = 0; I < Regions.size(); ++I)
        Backend->setCodeVersion(P.RegionFunctions[I], &Regions[I].Distilled);
      Reason = Backend->run(~0ull >> 1, &Timing);
      InstRet = Backend->instructionsRetired();
    }
    if (Reason != fsim::StopReason::Halted)
      State.SkipWithError("program did not halt");
    benchmark::DoNotOptimize(Timing.cycles());
  }
  reportExec(State, InstRet);
}
BENCHMARK_CAPTURE(BM_TimedRegion, reference, ExecTier::Reference)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TimedRegion, threaded, ExecTier::Threaded)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TimedRegion, fused, ExecTier::TimingFused)
    ->Unit(benchmark::kMillisecond);

/// The full MSSP simulation (fig7 closed-loop defaults, full fast path)
/// under each tier: how much of the dispatch win survives the timing
/// model, digesting, and the task protocol.
void BM_MsspTier(benchmark::State &State, ExecTier Tier) {
  MsspConfig Cfg;
  Cfg.Tier = Tier;
  Cfg.Control.MonitorPeriod = 1000;
  Cfg.Control.EnableEviction = true;
  Cfg.Control.EvictSaturation = 2000;
  Cfg.Control.WaitPeriod = 100000;
  Cfg.OptLatencyCycles = 0;
  MsspResult R;
  for (auto _ : State) {
    MsspSimulator Sim(fig7Program(), Cfg);
    R = Sim.run();
    benchmark::DoNotOptimize(R.TotalCycles);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(R.Tasks));
  State.counters["sim_insts_per_sec"] = benchmark::Counter(
      static_cast<double>(R.MasterInstructions + R.CheckerInstructions) *
          State.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_MsspTier, reference, ExecTier::Reference)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MsspTier, threaded, ExecTier::Threaded)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MsspTier, fused, ExecTier::TimingFused)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

//===- bench/ablation_task_size.cpp - MSSP task-granularity ablation ------===//
//
// Ablation behind the paper's Sec. 4.3 observation: MSSP speculates at
// *task* granularity, so multiple branch misspeculations inside one task
// cost one squash -- the observed task-misspeculation rate sits below the
// abstract model's per-branch prediction.  Larger tasks fold more branch
// misses per squash but pay a larger per-squash penalty (more work lost,
// later detection); this sweep exposes the trade-off.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mssp/MsspSimulator.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::mssp;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("ablation_task_size: MSSP task-granularity sweep");
  addStandardOptions(Opts);
  Opts.addString("bench", "gzip", "benchmark-like program to run");
  Opts.addInt("iterations", 90000, "main-loop iterations per run");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  const workload::BenchmarkProfile &Profile =
      profileByName(Opts.getString("bench"));
  const uint64_t Iterations =
      static_cast<uint64_t>(Opts.getInt("iterations"));

  printBanner("Ablation: task size",
              Profile.Name + "-like program: task granularity vs squash "
                             "folding and speedup");

  const SynthSpec Spec = makeSynthSpecFor(Profile, Iterations);
  SynthProgram Baseline = synthesize(Spec);
  const uint64_t BaselineCycles =
      simulateSuperscalarBaseline(Baseline, MachineConfig(), 0, Opt.Tier);

  Table Out({"iterations/task", "speedup", "tasks", "squashes",
             "branch misspecs", "misses folded per squash"});

  for (unsigned TaskIters : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SynthProgram Program = synthesize(Spec);
    MsspConfig Cfg;
    Cfg.Tier = Opt.Tier;
    Cfg.Control.MonitorPeriod = 1000;
    Cfg.Control.EvictSaturation = 2000;
    Cfg.Control.WaitPeriod = 100000;
    Cfg.TaskIterations = TaskIters;
    MsspSimulator Sim(Program, Cfg);
    const MsspResult R = Sim.run();
    const uint64_t BranchMisses = R.Controller.IncorrectSpecs;
    Out.row()
        .cell(static_cast<uint64_t>(TaskIters))
        .cell(static_cast<double>(BaselineCycles) / R.TotalCycles, 3)
        .cell(R.Tasks)
        .cell(R.TaskSquashes)
        .cell(BranchMisses)
        .cell(R.TaskSquashes
                  ? static_cast<double>(BranchMisses) / R.TaskSquashes
                  : 0.0,
              2);
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

//===- bench/table2_parameters.cpp - Table 2 ------------------------------===//
//
// Regenerates Table 2: the reactive model's parameters, read back from the
// ReactiveConfig defaults so the report can never drift from the code.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ReactiveConfig.h"
#include "support/Format.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;

int main(int Argc, char **Argv) {
  OptionSet Opts("table2_parameters: Table 2, model parameters");
  Opts.addFlag("csv", "emit CSV instead of aligned text tables");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;

  printBanner("Table 2", "reactive control model parameters (defaults of "
                         "core::ReactiveConfig)");

  const core::ReactiveConfig C;
  Table Out({"parameter", "value"});
  Out.row().cell("Monitor period").cell(
      formatWithCommas(C.MonitorPeriod) + " executions");
  Out.row().cell("Selection threshold").cell(
      formatPercent(C.SelectThreshold, 1));
  Out.row().cell("Misspeculation threshold").cell(
      formatWithCommas(C.EvictSaturation) + " (+" +
      std::to_string(C.EvictUp) + " on misp., -" +
      std::to_string(C.EvictDown) + " otherwise)");
  Out.row().cell("Wait period").cell(formatWithCommas(C.WaitPeriod) +
                                     " executions");
  Out.row().cell("Oscillation threshold").cell(
      "will not optimize a " +
      std::to_string(C.OscillationLimit + 1) + "th time");
  Out.row().cell("Optimization latency").cell(
      formatWithCommas(C.OptLatency) + " instructions");

  Out.print(std::cout, Opts.getFlag("csv"));
  return 0;
}

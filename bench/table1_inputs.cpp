//===- bench/table1_inputs.cpp - Table 1 ----------------------------------===//
//
// Regenerates Table 1: the profile/evaluation input pairs and run lengths.
// Our substrate's "inputs" are deterministic parameter/coverage settings
// derived from a seed; the table shows how much they diverge (the property
// Table 1's hand-picked inputs were chosen for) and the scaled run
// lengths.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Format.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("table1_inputs: Table 1, simulation data sets and run "
                 "lengths (scaled; see DESIGN.md)");
  addStandardOptions(Opts);
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Table 1",
              "profile vs evaluation inputs; run lengths scaled from the "
              "paper's billions of instructions");

  Table Out({"bench", "paper len", "ref events", "train events",
             "param bits differing", "coverage differing", "input-dep sites"});

  for (const WorkloadSpec &Spec : selectedSuite(Opt)) {
    const InputConfig Ref = Spec.refInput();
    const InputConfig Train = Spec.trainInput();
    uint32_t ParamDiffs = 0, CoverDiffs = 0, InputDep = 0;
    for (SiteId S = 0; S < Spec.numSites(); ++S) {
      if (Spec.Sites[S].Behavior.Kind == BehaviorKind::InputDependent) {
        ++InputDep;
        ParamDiffs += Ref.parameterBit(S) != Train.parameterBit(S);
      }
      if (Spec.Sites[S].InputGated)
        CoverDiffs += Ref.covers(S) != Train.covers(S);
    }
    const workload::BenchmarkProfile &P = profileByName(Spec.Name);
    Out.row()
        .cell(Spec.Name)
        .cell(formatDouble(P.PaperLenBillions, 0) + "B")
        .cell(formatMagnitude(static_cast<double>(Spec.RefEvents)))
        .cell(formatMagnitude(static_cast<double>(Train.Events)))
        .cell(ParamDiffs)
        .cell(CoverDiffs)
        .cell(InputDep);
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

//===- bench/adversarial_pump.cpp - Oscillation-pump adversary ------------===//
//
// Runs the controller-adversarial oscillation pump (ROADMAP 3b): branch
// sites whose bias alternates between "lure" (above the selection
// threshold) and "punish" (heavy misspeculation), with the period sized
// against the monitor window.  Compares static self-training against the
// reactive controller with the paper's oscillation limit (5), with the
// limit disabled, and with a strict limit of 1 -- measuring how much of
// the adversary's damage the Sec. 3.1 limit actually bounds.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "core/StaticControllers.h"
#include "profile/Pareto.h"
#include "support/Table.h"
#include "workload/AdversarialWorkload.h"

#include <iostream>
#include <memory>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

namespace {

struct Variant {
  const char *Name;
  ReactiveConfig Config;
};

constexpr const char *SelfTrainingName = "self-training-99";

std::unique_ptr<SpeculationController> makeNullController() {
  return std::make_unique<StaticSelectionController>(
      std::vector<bool>{}, std::vector<bool>{}, "none");
}

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Opts("adversarial_pump: oscillation-pump adversary vs the "
                 "reactive controller's oscillation limit");
  addStandardOptions(Opts);
  Opts.addInt("pump-events", 20000000,
              "branch events in the pump workload's reference run");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Adversarial pump",
              "oscillation-pumping sites vs the Sec. 3.1 oscillation "
              "limit (rates are fractions of all dynamic branches)");

  const ReactiveConfig Base = scaledBaseline(Opts);

  // Tie the pump's period to the controller it attacks: each lure regime
  // comfortably spans one monitor window, and the per-site skew spreads
  // the flips across the population.
  AdversarialPumpSpec Pump;
  Pump.Events = static_cast<uint64_t>(Opts.getInt("pump-events"));
  Pump.PumpPeriod = 3 * Base.MonitorPeriod;
  Pump.PeriodSkew = Base.MonitorPeriod / 8;

  ReactiveConfig NoLimit = Base;
  NoLimit.OscillationLimit = 0; // zero disables the limit
  ReactiveConfig Strict = Base;
  Strict.OscillationLimit = 1;

  const std::vector<Variant> Variants = {
      {"reactive-limit-5", Base},
      {"reactive-no-limit", NoLimit},
      {"reactive-limit-1", Strict},
  };

  engine::ExperimentPlan Plan;
  Plan.setBaseSeed(Opt.Seed);
  Plan.setTraceArena(makeArena(Opt));
  Plan.addBenchmark(makeOscillationPump(Pump));

  Plan.addConfig(SelfTrainingName, [](const engine::CellContext &) {
    return makeNullController();
  });
  for (const Variant &V : Variants)
    Plan.addConfig(V.Name, [V](const engine::CellContext &) {
      return std::make_unique<ReactiveController>(V.Config, V.Name);
    });
  Plan.setObserverFactory([](const engine::CellContext &Ctx)
                              -> std::unique_ptr<TraceObserver> {
    if (Ctx.ConfigName != SelfTrainingName)
      return nullptr;
    return std::make_unique<ProfileObserver>(Ctx.Spec.numSites());
  });

  const engine::RunReport Report = runSuite(Plan, Opt);
  if (!checkReport(Report))
    return 1;

  Table Out({"bench", "config", "correct", "incorrect", "evictions",
             "requests", "suppressed"});

  const std::string &Bench = Plan.benchmarks().front().Spec.Name;

  const engine::CellResult &SelfCell = Report.cell(0, 0, 0);
  const auto &Self =
      static_cast<const ProfileObserver &>(*SelfCell.Observer).profile();
  const profile::SelectionResult Ref =
      profile::evaluateSelection(Self, Self, 0.99);
  Out.row()
      .cell(Bench)
      .cell(SelfTrainingName)
      .cellPercent(Ref.Correct)
      .cellPercent(Ref.Incorrect, 4)
      .cell("-")
      .cell("-")
      .cell("-");

  for (uint32_t V = 0; V < Variants.size(); ++V) {
    const ControlStats &S = Report.cell(0, 0, V + 1).Stats;
    Out.row()
        .cell(Bench)
        .cell(Variants[V].Name)
        .cellPercent(S.correctRate())
        .cellPercent(S.incorrectRate(), 4)
        .cell(S.Evictions)
        .cell(S.DeployRequests + S.RevokeRequests)
        .cell(S.SuppressedRequests);
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

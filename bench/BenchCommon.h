//===- bench/BenchCommon.h - Shared bench-harness plumbing ------*- C++ -*-===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-table/per-figure bench binaries: standard
/// command-line options (output format, run-length scaling, benchmark
/// selection, parallelism), suite construction, experiment-plan helpers,
/// and the profile-collection passes that several experiments share.
///
/// Multi-run benches should describe their grid as an
/// engine::ExperimentPlan (see suitePlan) and execute it with runSuite
/// rather than hand-rolling nested benchmark/config loops; the engine
/// parallelizes cells across --jobs workers with results bit-identical to
/// a serial run.
///
//===----------------------------------------------------------------------===//

#ifndef SPECCTRL_BENCH_BENCHCOMMON_H
#define SPECCTRL_BENCH_BENCHCOMMON_H

#include "core/ReactiveConfig.h"
#include "engine/ExperimentRunner.h"
#include "profile/BranchProfile.h"
#include "support/Options.h"
#include "support/RunConfig.h"
#include "workload/ProgramSynthesizer.h"
#include "workload/SpecSuite.h"
#include "workload/TraceArena.h"
#include "workload/TraceGenerator.h"

#include <memory>
#include <string>
#include <vector>

namespace specctrl {
namespace bench {

/// Options every bench binary accepts.
struct SuiteOptions {
  workload::SuiteScale Scale;
  bool Csv = false;
  /// Benchmarks to run; empty = the full twelve.
  std::vector<std::string> Benchmarks;
  /// Worker threads for engine-backed benches (0 = hardware concurrency).
  unsigned Jobs = 0;
  /// Base seed mixed into every experiment cell's seed.
  uint64_t Seed = 0;
  /// Share one trace materialization across sweep cells (the default;
  /// --no-trace-arena regenerates per cell instead).
  bool UseTraceArena = true;
  /// Disk tier for the arena (--trace-cache-dir); empty = memory only.
  std::string TraceCacheDir;
  /// SimIR execution tier for MSSP-backed benches (--exec-tier, default
  /// from SPECCTRL_EXEC_TIER).  Never changes results, only throughput.
  ExecTier Tier = ExecTier::Reference;
};

/// Registers the workload-scaling options (--events-per-billion,
/// --site-scale) shared with the inspection tools.
void addScaleOptions(OptionSet &Opts);

/// Reads the scale options back.
workload::SuiteScale readScale(const OptionSet &Opts);

/// Registers the standard bench options (includes addScaleOptions).
void addStandardOptions(OptionSet &Opts);

/// Table 2's configuration with the optimization latency rescaled to the
/// harness's compressed run lengths (the paper's 1,000,000 instructions is
/// negligible against billion-instruction sites but would dominate our
/// ~1/300-length runs; --opt-latency overrides, and the fig5/fig8 latency
/// sweeps restore the paper's values explicitly).
core::ReactiveConfig scaledBaseline(const OptionSet &Opts);

/// Reads the standard options back.
SuiteOptions readSuiteOptions(const OptionSet &Opts);

/// Builds the selected benchmarks (all twelve by default).
std::vector<workload::WorkloadSpec> selectedSuite(const SuiteOptions &Opt);

/// The selected calibration profiles (for benches that work from profiles
/// rather than workload specs).
std::vector<workload::BenchmarkProfile>
selectedProfiles(const SuiteOptions &Opt);

/// The suite's trace arena under the standard options: a fresh arena
/// (with the --trace-cache-dir disk tier when set), or null under
/// --no-trace-arena.  suitePlan installs it automatically; hand-rolled
/// benches pass it to runBenchWorkload.
std::shared_ptr<workload::TraceArena> makeArena(const SuiteOptions &Opt);

/// Runs (Spec, Input) under \p Controller through \p Arena when non-null
/// (materialize-once replay), else via direct generation.  Bit-identical
/// results either way -- the single-run analogue of the plan arena.
const core::ControlStats &
runBenchWorkload(core::SpeculationController &Controller,
                 const workload::WorkloadSpec &Spec,
                 const workload::InputConfig &Input,
                 workload::TraceArena *Arena);

/// Starts an experiment plan over the selected suite: one benchmark axis
/// per selected workload (reference input), base seed from --seed, and --
/// unless --no-trace-arena -- a per-plan trace arena so every config
/// column replays one shared materialization per benchmark.  The bench
/// adds its controller configs and runs it with runSuite.
engine::ExperimentPlan suitePlan(const SuiteOptions &Opt);

/// Executes \p Plan with --jobs workers.
engine::RunReport runSuite(const engine::ExperimentPlan &Plan,
                           const SuiteOptions &Opt);

/// Starts an MSSP experiment plan: one benchmark axis per selected
/// calibration profile (reference input), base seed from --seed.  The
/// bench adds task columns with addTaskConfig whose runners recover their
/// profile via msspCellProfile / synthesize via msspSynthSpec, and
/// executes the grid with runSuite.
engine::ExperimentPlan msspSuitePlan(const SuiteOptions &Opt);

/// The calibration profile of an MSSP plan cell (matched by benchmark
/// name).
const workload::BenchmarkProfile &
msspCellProfile(const engine::CellContext &Ctx);

/// The cell's synthesis spec.  Deterministic per benchmark by default so
/// the reference outputs stay bit-identical; a nonzero --seed perturbs
/// the synthesis per cell (Spec.Seed ^= cell seed).
workload::SynthSpec msspSynthSpec(const engine::CellContext &Ctx,
                                  uint64_t Iterations);

/// Prints any failed cells to stderr.  Returns true when every cell
/// succeeded (bench mains typically `return checkReport(R) ? 0 : 1`
/// after printing).
bool checkReport(const engine::RunReport &Report);

/// One full run collecting whole-run per-site outcome counts.
profile::BranchProfile collectProfile(const workload::WorkloadSpec &Spec,
                                      const workload::InputConfig &Input);

/// Prints the standard bench banner ("# <name>: <paper artifact>").
void printBanner(const std::string &Title, const std::string &Detail);

} // namespace bench
} // namespace specctrl

#endif // SPECCTRL_BENCH_BENCHCOMMON_H

//===- bench/fig8_mssp_latency.cpp - Figure 8 -----------------------------===//
//
// Regenerates Figure 8: MSSP performance is insensitive to the
// (re)optimization latency -- 0, 10^5, and 10^6 cycles are nearly
// indistinguishable (paper: <2%), because deployment delay only defers
// benefit slightly and misbehaving sites keep being caught by the
// trailing execution regardless.
//
// The grid (benchmark x {baseline, three latencies}) is an ExperimentPlan
// of task cells; --jobs parallelizes them with output bit-identical to a
// serial run.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mssp/MsspSimulator.h"
#include "support/Table.h"

#include <algorithm>
#include <any>
#include <iostream>
#include <string>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::engine;
using namespace specctrl::mssp;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("fig8_mssp_latency: Figure 8, insensitivity to "
                 "optimization latency in the MSSP simulation");
  addStandardOptions(Opts);
  Opts.addInt("iterations", 90000, "main-loop iterations per run");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);
  const uint64_t Iterations =
      static_cast<uint64_t>(Opts.getInt("iterations"));

  printBanner("Figure 8",
              "MSSP speedup over the superscalar baseline at optimization "
              "latencies of 0 / 1e5 / 1e6 cycles (closed loop)");

  const ExecTier Tier = Opt.Tier;
  ExperimentPlan Plan = msspSuitePlan(Opt);
  Plan.addTaskConfig("baseline", [Iterations, Tier](const CellContext &Ctx) {
    SynthProgram Program = synthesize(msspSynthSpec(Ctx, Iterations));
    return std::any(
        simulateSuperscalarBaseline(Program, MachineConfig(), 0, Tier));
  });
  const uint64_t Latencies[3] = {0, 100000, 1000000};
  for (const uint64_t Latency : Latencies)
    Plan.addTaskConfig("latency-" + std::to_string(Latency),
                       [Iterations, Latency, Tier](const CellContext &Ctx) {
                         SynthProgram Prog =
                             synthesize(msspSynthSpec(Ctx, Iterations));
                         MsspConfig Cfg;
                         Cfg.Tier = Tier;
                         Cfg.Control.MonitorPeriod = 1000;
                         Cfg.Control.EvictSaturation = 2000;
                         Cfg.Control.WaitPeriod = 100000;
                         Cfg.OptLatencyCycles = Latency;
                         MsspSimulator Sim(Prog, Cfg);
                         return std::any(Sim.run());
                       });

  const RunReport Report = runSuite(Plan, Opt);
  if (!checkReport(Report))
    return 1;

  Table Out({"bench", "latency 0", "latency 1e5", "latency 1e6",
             "max delta"});

  double Sums[3] = {0, 0, 0};
  unsigned N = 0;
  for (uint32_t B = 0; B < Plan.benchmarks().size(); ++B) {
    const uint64_t Baseline =
        std::any_cast<uint64_t>(Report.cell(B, 0, 0).Value);

    double Speedups[3];
    for (int I = 0; I < 3; ++I) {
      const MsspResult R =
          std::any_cast<MsspResult>(Report.cell(B, 0, 1 + I).Value);
      Speedups[I] = static_cast<double>(Baseline) / R.TotalCycles;
      Sums[I] += Speedups[I];
    }
    ++N;

    const double MaxDelta =
        std::max({Speedups[0], Speedups[1], Speedups[2]}) /
            std::min({Speedups[0], Speedups[1], Speedups[2]}) -
        1.0;
    Out.row()
        .cell(Plan.benchmarks()[B].Spec.Name)
        .cell(Speedups[0], 3)
        .cell(Speedups[1], 3)
        .cell(Speedups[2], 3)
        .cellPercent(MaxDelta);
  }
  if (N > 1)
    Out.row()
        .cell("average")
        .cell(Sums[0] / N, 3)
        .cell(Sums[1] / N, 3)
        .cell(Sums[2] / N, 3)
        .cell("-");

  Out.print(std::cout, Opt.Csv);
  return 0;
}

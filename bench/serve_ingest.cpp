//===- bench/serve_ingest.cpp - Streaming-server ingest throughput --------===//
//
// google-benchmark microbenches for the serve layer: a StreamServer
// hosting N concurrent streams (up to well past 1000 -- the multi-tenant
// acceptance point), fed round-robin by the bench thread through each
// stream's SPSC ring while consumer shards drain into the per-stream
// reactive controllers.  Reports sustained ingest as events/sec
// (items_per_second) and the per-batch ingest latency distribution --
// the wall time for one full producer batch to be accepted by a ring,
// backpressure stalls included -- as p50/p99 counters from a
// Log2Histogram.
//
// Arguments are (streams, consumers).  `tools/run_bench.sh` (or the
// bench-serve target) records the sweep as BENCH_serve.json.
//
//===----------------------------------------------------------------------===//

#include "core/ReactiveConfig.h"
#include "serve/StreamServer.h"
#include "support/Statistics.h"
#include "workload/EventStream.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

using namespace specctrl;

namespace {

/// Events every stream ingests per iteration: enough full batches that
/// each stream crosses several epoch boundaries and refills its ring.
constexpr size_t BatchEvents = 1024;
constexpr size_t BatchesPerStream = 4;

/// One producer batch of synthetic branch events, spread over enough
/// sites that the controllers do real classification work.
std::vector<workload::BranchEvent> makeBatch() {
  std::vector<workload::BranchEvent> Out(BatchEvents);
  for (uint64_t I = 0; I < BatchEvents; ++I) {
    workload::BranchEvent &E = Out[I];
    E.Site = static_cast<workload::SiteId>(I % 64);
    E.Taken = (I % 16) != 0; // strongly biased: deployment happens
    E.Gap = static_cast<uint32_t>(I % 13);
    E.Index = I;
    E.InstRet = I * 3 + 1;
  }
  return Out;
}

core::ReactiveConfig benchControl() {
  core::ReactiveConfig C = core::ReactiveConfig::baseline();
  C.MonitorPeriod = 100;
  C.WaitPeriod = 2000;
  C.OptLatency = 0;
  return C;
}

/// Blocking push of one full batch; returns the wall time it took for
/// the ring to accept every event (the per-batch ingest latency).
uint64_t pushBatchTimed(workload::SpscRing &Ring,
                        std::span<const workload::BranchEvent> Batch) {
  const auto Start = std::chrono::steady_clock::now();
  size_t Pos = 0;
  while (Pos < Batch.size()) {
    const size_t N = Ring.push(Batch.subspan(Pos));
    if (N == 0)
      std::this_thread::yield();
    Pos += N;
  }
  const auto End = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
}

/// N concurrent streams in one server, fed round-robin -- every stream
/// has events in flight at once, so the consumer shards interleave all
/// of them, the multi-tenant case.
void BM_ServeIngest(benchmark::State &State) {
  const size_t Streams = static_cast<size_t>(State.range(0));
  const unsigned Consumers = static_cast<unsigned>(State.range(1));
  const std::vector<workload::BranchEvent> Batch = makeBatch();

  Log2Histogram PushNs;
  uint64_t Events = 0;
  for (auto _ : State) {
    serve::ServeConfig Config;
    Config.Consumers = Consumers;
    Config.EpochEvents = 1024;
    Config.RingEvents = 2048; // small rings: ~1000 streams stay cheap
    serve::StreamServer Server(Config);

    std::vector<serve::StreamServer::StreamHandle> Handles;
    Handles.reserve(Streams);
    for (size_t I = 0; I < Streams; ++I)
      Handles.push_back(Server.openStream(benchControl()));

    for (size_t Round = 0; Round < BatchesPerStream; ++Round)
      for (const serve::StreamServer::StreamHandle &H : Handles)
        PushNs.add(pushBatchTimed(*H.Ring, Batch));
    for (const serve::StreamServer::StreamHandle &H : Handles)
      H.Ring->close();
    for (const serve::StreamServer::StreamHandle &H : Handles)
      Server.waitFinished(H.Id);

    Events = Server.metrics().EventsIngested;
    benchmark::DoNotOptimize(Events);
  }

  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Events));
  State.counters["streams"] =
      benchmark::Counter(static_cast<double>(Streams));
  State.counters["batch_events"] =
      benchmark::Counter(static_cast<double>(BatchEvents));
  State.counters["p50_batch_ingest_ns"] =
      benchmark::Counter(PushNs.quantile(0.50));
  State.counters["p99_batch_ingest_ns"] =
      benchmark::Counter(PushNs.quantile(0.99));
}
BENCHMARK(BM_ServeIngest)
    ->ArgNames({"streams", "consumers"})
    ->Args({64, 1})
    ->Args({256, 2})
    ->Args({1024, 4})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

//===- bench/ext_value_speculation.cpp - Sec. 2's generalization claim ----===//
//
// The paper states its branch results are "qualitatively consistent with
// other program behaviors (e.g., loads that produce invariant values)".
// This extension experiment substantiates that: the identical Fig. 4(b)
// FSM controls load-value speculation over value streams derived from the
// same workload models, and the same contrasts appear --
//
//   * reactive control keeps value-misspeculation ~2 orders of magnitude
//     below open-loop control on constant-changing loads;
//   * the one-shot (initial behavior) policy compiles in constants that
//     later change.
//
// Value streams: each branch site becomes a load site whose value is the
// site's current phase constant when the branch model says "biased
// direction", and noise otherwise; behavior changes change the constant.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ValueInvariance.h"
#include "support/Format.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

namespace {

/// Derives a load value from a branch event: phase constant when the
/// model says "invariant", fresh noise otherwise.  The constant advances
/// whenever the site crosses a behavior-change boundary, so flip/periodic
/// sites model "x.d was 32, is now 48".
uint64_t deriveValue(const WorkloadSpec &Spec, const BranchEvent &E,
                     std::vector<uint64_t> &ExecCount, Rng &Noise) {
  const BehaviorSpec &B = Spec.Sites[E.Site].Behavior;
  const uint64_t Exec = ExecCount[E.Site]++;
  uint64_t Epoch = 0;
  switch (B.Kind) {
  case BehaviorKind::FlipAt:
  case BehaviorKind::Soften:
  case BehaviorKind::InductionFlip:
    Epoch = B.ChangeAt && Exec >= B.ChangeAt ? 1 : 0;
    break;
  case BehaviorKind::Periodic:
    Epoch = B.Period ? Exec / B.Period : 0;
    break;
  default:
    break;
  }
  const uint64_t Constant = 32 + E.Site * 131 + Epoch * 17;
  // "Biased direction" (either way) means the invariant value appears.
  const bool Invariant = E.Taken == (B.BiasA >= 0.5);
  return Invariant ? Constant : Constant + 1 + Noise.nextBelow(1000);
}

struct RunResult {
  double Correct = 0;
  double Incorrect = 0;
  uint64_t Evictions = 0;
};

RunResult runPolicy(const WorkloadSpec &Spec, const ReactiveConfig &Config) {
  ValueInvarianceController C(Config);
  TraceGenerator Gen(Spec, Spec.refInput());
  std::vector<uint64_t> ExecCount(Spec.numSites(), 0);
  Rng Noise(Spec.Seed ^ 0x56414Cull);
  BranchEvent E;
  while (Gen.next(E))
    C.onLoad(E.Site, deriveValue(Spec, E, ExecCount, Noise), E.InstRet);
  return {C.stats().correctRate(), C.stats().incorrectRate(),
          C.stats().Evictions};
}

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Opts("ext_value_speculation: the Fig. 4(b) FSM controlling "
                 "load-value speculation (Sec. 2's generalization claim)");
  addStandardOptions(Opts);
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Extension: value speculation",
              "reactive vs open-loop vs one-shot control of load-value "
              "invariance (rates are fractions of all dynamic loads)");

  const ReactiveConfig Base = scaledBaseline(Opts);
  ReactiveConfig Open = Base;
  Open.EnableEviction = false;
  ReactiveConfig OneShot = ReactiveConfig::oneShot(1000);
  OneShot.OptLatency = Base.OptLatency;

  Table Out({"bench", "reactive corr/incorr", "open-loop corr/incorr",
             "one-shot-1k corr/incorr", "evictions"});
  double Sum[6] = {0, 0, 0, 0, 0, 0};
  unsigned N = 0;
  for (const WorkloadSpec &Spec : selectedSuite(Opt)) {
    const RunResult Reactive = runPolicy(Spec, Base);
    const RunResult OpenLoop = runPolicy(Spec, Open);
    const RunResult Shot = runPolicy(Spec, OneShot);
    Out.row()
        .cell(Spec.Name)
        .cell(formatPercent(Reactive.Correct) + " / " +
              formatPercent(Reactive.Incorrect, 4))
        .cell(formatPercent(OpenLoop.Correct) + " / " +
              formatPercent(OpenLoop.Incorrect, 4))
        .cell(formatPercent(Shot.Correct) + " / " +
              formatPercent(Shot.Incorrect, 4))
        .cell(Reactive.Evictions);
    Sum[0] += Reactive.Correct;
    Sum[1] += Reactive.Incorrect;
    Sum[2] += OpenLoop.Correct;
    Sum[3] += OpenLoop.Incorrect;
    Sum[4] += Shot.Correct;
    Sum[5] += Shot.Incorrect;
    ++N;
  }
  if (N > 1)
    Out.row()
        .cell("ave")
        .cell(formatPercent(Sum[0] / N) + " / " +
              formatPercent(Sum[1] / N, 4))
        .cell(formatPercent(Sum[2] / N) + " / " +
              formatPercent(Sum[3] / N, 4))
        .cell(formatPercent(Sum[4] / N) + " / " +
              formatPercent(Sum[5] / N, 4))
        .cell("-");

  Out.print(std::cout, Opt.Csv);
  return 0;
}

//===- bench/fig9_correlation.cpp - Figure 9 ------------------------------===//
//
// Regenerates Figure 9: the biased-period tracks of vortex's flipping
// branches.  Each track is the period(s) of the run during which one
// static branch's 1000-instance block bias stays >= 99%; branches in the
// same correlation group change behavior together, which is what lets one
// code re-optimization fold several controller transitions (Sec. 4.3).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/BiasSeries.h"
#include "support/Format.h"
#include "support/Table.h"

#include <iostream>
#include <map>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::profile;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("fig9_correlation: Figure 9, correlated behavioral changes "
                 "of vortex's flipping branches");
  addStandardOptions(Opts);
  Opts.addString("bench", "vortex", "which benchmark to analyze");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  const WorkloadSpec Spec =
      makeBenchmark(Opts.getString("bench"), Opt.Scale);
  printBanner("Figure 9",
              Spec.Name + ": periods when each group-flipping branch is "
                          "biased (>=99% block bias); groups flip together");

  // Track every phase-group site.
  std::vector<SiteId> Tracked;
  for (SiteId S = 0; S < Spec.numSites(); ++S)
    if (Spec.Sites[S].Behavior.Kind == BehaviorKind::PhaseGroup)
      Tracked.push_back(S);

  BiasSeriesCollector Collector(Tracked, 1000);
  TraceGenerator Gen(Spec, Spec.refInput());
  BranchEvent E;
  while (Gen.next(E))
    Collector.addOutcome(E.Site, E.Taken, E.Index);
  Collector.finish(Gen.eventsGenerated());

  const double Total = static_cast<double>(Gen.eventsGenerated());
  Table Out({"site", "group", "biased periods (% of run)"});
  std::map<uint32_t, std::vector<std::string>> ByGroup;
  for (size_t T = 0; T < Tracked.size(); ++T) {
    const SiteId S = Tracked[T];
    const uint32_t G = Spec.Sites[S].Behavior.GroupId;
    std::string Periods;
    for (const auto &[Lo, Hi] : Collector.biasedIntervals(T, 0.99)) {
      if (!Periods.empty())
        Periods += ", ";
      Periods += formatPercent(Lo / Total, 0) + "-" +
                 formatPercent(Hi / Total, 0);
    }
    Out.row()
        .cell("site " + std::to_string(S))
        .cell(G)
        .cell(Periods.empty() ? "(never biased)" : Periods);
  }
  Out.print(std::cout, Opt.Csv);

  // The group schedules themselves: the ground truth the tracks follow.
  std::cout << "\ngroup schedules (phase 0.." << Spec.NumPhases - 1
            << ", '#' = biased regime):\n";
  for (uint32_t G = 0; G < Spec.numGroups(); ++G) {
    std::string RowStr;
    for (unsigned P = 0; P < Spec.NumPhases; ++P)
      RowStr += Spec.groupOnInPhase(G, P) ? '#' : '.';
    std::cout << "  group " << G << ": " << RowStr << '\n';
  }
  return 0;
}

//===- bench/table4_sensitivity.cpp - Table 4 -----------------------------===//
//
// Regenerates Table 4: suite-average correct/incorrect speculation rates
// for each model configuration, sorted by correct rate as the paper
// presents them.  The load-bearing rows are "no revisit" (loses correct
// speculations) and "no eviction" (misspeculation explodes by ~2 orders
// of magnitude); everything else clusters around the baseline.
//
// Also reports the oscillation-limit ablation the paper quotes in Sec. 3.1
// ("a two-thirds reduction in the number of requested reoptimizations"):
// run with --no-oscillation-limit to see the unconstrained request count.
//
// The (configuration x benchmark) grid is an ExperimentPlan executed by
// the parallel engine; --jobs controls the worker count and any value
// produces identical output.  The grid/formatting live in
// Table4Experiment.h, shared with tools/specctrl-sweep (the multi-process
// executor) so the two binaries' output is byte-identical.
//
//===----------------------------------------------------------------------===//

#include "Table4Experiment.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;

int main(int Argc, char **Argv) {
  OptionSet Opts("table4_sensitivity: Table 4, model sensitivity (suite "
                 "averages)");
  addStandardOptions(Opts);
  Opts.addFlag("no-oscillation-limit",
               "add an ablation row with the per-site optimization cap "
               "disabled");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner(Table4Title, Table4Detail);

  const std::vector<Table4Variant> Variants = table4Variants(
      scaledBaseline(Opts), Opts.getFlag("no-oscillation-limit"));
  const engine::ExperimentPlan Plan = table4Plan(Opt, Variants);
  const engine::RunReport Report = runSuite(Plan, Opt);
  if (!checkReport(Report))
    return 1;

  printTable4Report(std::cout, Report, Variants, Plan.benchmarks().size(),
                    Opt.Csv);
  return 0;
}

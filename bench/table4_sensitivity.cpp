//===- bench/table4_sensitivity.cpp - Table 4 -----------------------------===//
//
// Regenerates Table 4: suite-average correct/incorrect speculation rates
// for each model configuration, sorted by correct rate as the paper
// presents them.  The load-bearing rows are "no revisit" (loses correct
// speculations) and "no eviction" (misspeculation explodes by ~2 orders
// of magnitude); everything else clusters around the baseline.
//
// Also reports the oscillation-limit ablation the paper quotes in Sec. 3.1
// ("a two-thirds reduction in the number of requested reoptimizations"):
// run with --no-oscillation-limit to see the unconstrained request count.
//
// The (configuration x benchmark) grid is an ExperimentPlan executed by
// the parallel engine; --jobs controls the worker count and any value
// produces identical output.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ReactiveController.h"
#include "support/Table.h"

#include <algorithm>
#include <iostream>
#include <memory>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

namespace {

struct Row {
  std::string Name;
  std::string PaperCorrect;
  std::string PaperIncorrect;
  double Correct = 0;
  double Incorrect = 0;
  uint64_t Requests = 0;
  uint64_t Suppressed = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Opts("table4_sensitivity: Table 4, model sensitivity (suite "
                 "averages)");
  addStandardOptions(Opts);
  Opts.addFlag("no-oscillation-limit",
               "add an ablation row with the per-site optimization cap "
               "disabled");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Table 4", "model sensitivity: suite-average correct and "
                         "incorrect rates per configuration (paper values "
                         "in parentheses)");

  const ReactiveConfig Base = scaledBaseline(Opts);
  auto WithBaseLatency = [&Base](ReactiveConfig C) {
    C.OptLatency = Base.OptLatency;
    // Keep the scaled wait period except where the variant itself changes
    // it (frequent revisit = one order of magnitude below the baseline).
    C.WaitPeriod = C.WaitPeriod == ReactiveConfig().WaitPeriod
                       ? Base.WaitPeriod
                       : Base.WaitPeriod / 10;
    // Keep the sampling variant's 10% duty cycle but scale the window
    // with the compressed site lifetimes.
    if (C.EvictBySampling) {
      C.EvictSampleWindow = 2000;
      C.EvictSampleCount = 200;
    }
    return C;
  };

  struct Variant {
    std::string Name;
    ReactiveConfig Config;
    const char *PaperCorrect;
    const char *PaperIncorrect;
  };
  std::vector<Variant> Variants = {
      {"no revisit", WithBaseLatency(ReactiveConfig::noRevisit()), "35.8%",
       "0.007%"},
      {"lower eviction threshold",
       WithBaseLatency(ReactiveConfig::lowerEvictionThreshold()), "42.9%",
       "0.015%"},
      {"eviction by sampling",
       WithBaseLatency(ReactiveConfig::evictionBySampling()), "43.6%",
       "0.021%"},
      {"baseline", Base, "44.8%", "0.023%"},
      {"sampling in monitor",
       WithBaseLatency(ReactiveConfig::monitorSampling()), "44.8%",
       "0.025%"},
      {"more frequent revisit (100k)",
       WithBaseLatency(ReactiveConfig::frequentRevisit()), "46.1%",
       "0.033%"},
      {"no eviction", WithBaseLatency(ReactiveConfig::noEviction()), "53.9%",
       "1.979%"},
  };
  if (Opts.getFlag("no-oscillation-limit")) {
    ReactiveConfig C = Base;
    C.OscillationLimit = 0;
    Variants.push_back({"no oscillation limit", C, "-", "-"});
  }

  // One engine cell per (benchmark, configuration); every cell builds its
  // own controller from the captured config, so parallel execution is
  // bit-identical to serial.
  engine::ExperimentPlan Plan = suitePlan(Opt);
  for (const Variant &V : Variants)
    Plan.addConfig(V.Name,
                   [Config = V.Config](const engine::CellContext &) {
                     return std::make_unique<ReactiveController>(Config);
                   });
  const engine::RunReport Report = runSuite(Plan, Opt);
  if (!checkReport(Report))
    return 1;

  const size_t NumBenchmarks = Plan.benchmarks().size();
  std::vector<Row> Rows;
  for (uint32_t V = 0; V < Variants.size(); ++V) {
    Row R;
    R.Name = Variants[V].Name;
    R.PaperCorrect = Variants[V].PaperCorrect;
    R.PaperIncorrect = Variants[V].PaperIncorrect;
    for (uint32_t B = 0; B < NumBenchmarks; ++B) {
      const ControlStats &S = Report.cell(B, 0, V).Stats;
      R.Correct += S.correctRate();
      R.Incorrect += S.incorrectRate();
      R.Requests += S.DeployRequests + S.RevokeRequests;
      R.Suppressed += S.SuppressedRequests;
    }
    R.Correct /= static_cast<double>(NumBenchmarks);
    R.Incorrect /= static_cast<double>(NumBenchmarks);
    Rows.push_back(R);
  }

  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const Row &A, const Row &B) {
                     return A.Correct < B.Correct;
                   });

  Table Out({"configuration", "correct", "incorrect", "requests",
             "suppressed"});
  for (const Row &R : Rows)
    Out.row()
        .cell(R.Name + (R.PaperCorrect[0] != '-'
                            ? " (" + R.PaperCorrect + "/" +
                                  R.PaperIncorrect + ")"
                            : ""))
        .cellPercent(R.Correct)
        .cellPercent(R.Incorrect, 4)
        .cell(R.Requests)
        .cell(R.Suppressed);

  Out.print(std::cout, Opt.Csv);
  return 0;
}

//===- bench/micro_controller.cpp - Implementation-cost microbenches ------===//
//
// google-benchmark microbenchmarks backing Sec. 3.3's implementability
// claim: the controller's per-branch cost is a handful of nanoseconds and
// a few dozen bytes of state per static site, so "the model can be
// implemented in an efficient manner".
//
//===----------------------------------------------------------------------===//

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "distill/Distiller.h"
#include "engine/ExperimentRunner.h"
#include "workload/ProgramSynthesizer.h"
#include "workload/SpecSuite.h"
#include "workload/TraceGenerator.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace specctrl;

namespace {

/// Steady-state cost of one onBranch on a deployed biased site.
void BM_ControllerBiasedBranch(benchmark::State &State) {
  core::ReactiveConfig Cfg;
  Cfg.MonitorPeriod = 1000;
  Cfg.OptLatency = 0;
  core::ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  for (int I = 0; I < 2000; ++I)
    C.onBranch(0, true, InstRet += 5);

  for (auto _ : State) {
    benchmark::DoNotOptimize(C.onBranch(0, true, InstRet += 5));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ControllerBiasedBranch);

/// Cost of one onBranch while monitoring (the sampled path).
void BM_ControllerMonitorBranch(benchmark::State &State) {
  core::ReactiveConfig Cfg;
  Cfg.MonitorPeriod = ~0ull >> 1; // never classify
  core::ReactiveController C(Cfg);
  uint64_t InstRet = 0;
  bool Taken = false;
  for (auto _ : State) {
    Taken = !Taken;
    benchmark::DoNotOptimize(C.onBranch(0, Taken, InstRet += 5));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ControllerMonitorBranch);

/// Whole-pipeline throughput: trace generation + controller, through the
/// single-run primitive the engine calls per cell.
void BM_TracePlusController(benchmark::State &State) {
  const workload::WorkloadSpec Spec = workload::makeBenchmark(
      "bzip2", {6.0e4, 0.1});
  for (auto _ : State) {
    core::ReactiveController C(core::ReactiveConfig::baseline());
    workload::TraceGenerator Gen(Spec, Spec.refInput());
    benchmark::DoNotOptimize(core::runTrace(C, Gen).CorrectSpecs);
  }
  State.SetItemsProcessed(State.iterations() * Spec.RefEvents);
}
BENCHMARK(BM_TracePlusController)->Unit(benchmark::kMillisecond);

/// Whole-suite engine throughput at (workers, chunk events) = (Args 0, 1):
/// the twelve benchmarks under the baseline reactive config, one engine
/// cell each.  Compare {1, ...} vs {4, ...} for the parallel speedup and
/// {N, 1} vs {N, 4096} for the batched-dispatch speedup; the results are
/// bit-identical at every worker count and chunk size.
void BM_EngineSuite(benchmark::State &State) {
  const workload::SuiteScale Scale{6.0e4, 0.1};
  uint64_t EventsPerRun = 0;
  uint64_t BatchesPerRun = 0;
  for (auto _ : State) {
    engine::ExperimentPlan Plan;
    for (const workload::BenchmarkProfile &P : workload::suiteProfiles())
      Plan.addBenchmark(workload::makeBenchmark(P, Scale));
    Plan.addConfig("baseline", [](const engine::CellContext &) {
      return std::make_unique<core::ReactiveController>(
          core::ReactiveConfig::baseline());
    });
    engine::RunOptions Run;
    Run.Jobs = static_cast<unsigned>(State.range(0));
    Run.BatchEvents = static_cast<size_t>(State.range(1));
    const engine::RunReport Report = engine::runPlan(Plan, Run);
    EventsPerRun = Report.totalEvents();
    BatchesPerRun = 0;
    for (const engine::CellResult &Cell : Report.Cells)
      BatchesPerRun += Cell.Batches;
    benchmark::DoNotOptimize(EventsPerRun);
  }
  State.SetItemsProcessed(State.iterations() * EventsPerRun);
  State.counters["batches"] =
      benchmark::Counter(static_cast<double>(BatchesPerRun));
}
BENCHMARK(BM_EngineSuite)
    ->Args({1, 1})
    ->Args({1, 4096})
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/// Trace generation alone (to separate substrate from controller cost).
void BM_TraceGeneration(benchmark::State &State) {
  const workload::WorkloadSpec Spec = workload::makeBenchmark(
      "bzip2", {6.0e4, 0.1});
  for (auto _ : State) {
    workload::TraceGenerator Gen(Spec, Spec.refInput());
    workload::BranchEvent E;
    uint64_t Sum = 0;
    while (Gen.next(E))
      Sum += E.Taken;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * Spec.RefEvents);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

/// Distilling one median-sized region (the paper's ~100-instruction
/// optimization unit): the re-optimization work itself.
void BM_DistillRegion(benchmark::State &State) {
  const workload::SynthSpec Spec =
      workload::makeDefaultSynthSpec("micro", 7, 1000, 1, 0.8);
  workload::SynthProgram Program = workload::synthesize(Spec);
  const ir::Function &Region =
      Program.Mod.function(Program.RegionFunctions[0]);
  distill::DistillRequest Request;
  for (const workload::SynthSiteInfo &Info : Program.Sites)
    if (!Info.IsControlSite)
      Request.BranchAssertions[Info.Site] = true;

  for (auto _ : State) {
    distill::DistillResult R = distill::distillFunction(Region, Request);
    benchmark::DoNotOptimize(R.DistilledSize);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_DistillRegion);

/// Controller memory footprint per tracked static branch.
void BM_ControllerStateFootprint(benchmark::State &State) {
  for (auto _ : State) {
    core::ReactiveController C(core::ReactiveConfig::baseline());
    for (core::SiteId S = 0; S < 10000; ++S)
      C.onBranch(S, true, S * 5);
    benchmark::DoNotOptimize(C.stats().Branches);
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_ControllerStateFootprint);

} // namespace

BENCHMARK_MAIN();

//===- bench/Table4Experiment.h - Shared Table 4 sweep ----------*- C++ -*-===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 4 model-sensitivity sweep as a reusable experiment: the
/// variant list (paper values included), the plan construction, and the
/// report formatting.  Two binaries execute it -- bench/table4_sensitivity
/// (thread pool) and tools/specctrl-sweep (process pool) -- and because
/// both build the grid and render the rows through these helpers, their
/// output is byte-identical, which is what the cross-process determinism
/// tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef SPECCTRL_BENCH_TABLE4EXPERIMENT_H
#define SPECCTRL_BENCH_TABLE4EXPERIMENT_H

#include "BenchCommon.h"

#include <iosfwd>

namespace specctrl {
namespace bench {

/// The banner every Table 4 binary prints (via printBanner) before
/// running the grid.
inline constexpr const char *Table4Title = "Table 4";
inline constexpr const char *Table4Detail =
    "model sensitivity: suite-average correct and incorrect rates per "
    "configuration (paper values in parentheses)";

/// One model configuration row, with the paper's reported rates ("-" for
/// ablation rows the paper has no numbers for).
struct Table4Variant {
  std::string Name;
  core::ReactiveConfig Config;
  const char *PaperCorrect;
  const char *PaperIncorrect;
};

/// The Table 4 variant list under \p Base (the scaled baseline from the
/// standard options).  \p NoOscillationLimit appends the Sec. 3.1
/// oscillation-limit ablation row.
std::vector<Table4Variant> table4Variants(const core::ReactiveConfig &Base,
                                          bool NoOscillationLimit);

/// Builds the (benchmark x variant) grid: suitePlan(Opt) plus one
/// controller column per variant.
engine::ExperimentPlan table4Plan(const SuiteOptions &Opt,
                                  const std::vector<Table4Variant> &Variants);

/// Formats \p Report into the Table 4 rows (suite averages sorted by
/// correct rate) and renders them to \p OS.  \p NumBenchmarks is the
/// plan's benchmark-axis size.
void printTable4Report(std::ostream &OS, const engine::RunReport &Report,
                       const std::vector<Table4Variant> &Variants,
                       size_t NumBenchmarks, bool Csv);

} // namespace bench
} // namespace specctrl

#endif // SPECCTRL_BENCH_TABLE4EXPERIMENT_H

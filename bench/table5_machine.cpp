//===- bench/table5_machine.cpp - Table 5 ---------------------------------===//
//
// Regenerates Table 5: the simulated machine's parameters, read back from
// the MachineConfig defaults so the report can never drift from the code.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mssp/MachineConfig.h"
#include "support/Format.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::mssp;

int main(int Argc, char **Argv) {
  OptionSet Opts("table5_machine: Table 5, simulation parameters");
  // Standard option set for harness uniformity; the table reads the
  // MachineConfig defaults, so only --csv affects the output.
  addStandardOptions(Opts);
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Table 5", "simulated CMP parameters (defaults of "
                         "mssp::MachineConfig)");

  const MachineConfig M;
  auto Cache = [](const CacheConfig &C) {
    return formatMagnitude(static_cast<double>(C.SizeBytes)) + "B " +
           std::to_string(C.Assoc) + "-way SA, " +
           std::to_string(C.BlockBytes) + "B blocks, " +
           std::to_string(C.LatencyCycles) + "-cycle";
  };
  auto Core = [](const CoreConfig &C) {
    return std::to_string(C.Width) + "-wide, " +
           std::to_string(C.PipelineDepth) + "-stage pipe, " +
           std::to_string(C.WindowSize) + "-entry window";
  };

  Table Out({"parameter", "leading core", "trailing cores (x" +
                              std::to_string(M.NumTrailing) + ")"});
  Out.row().cell("Pipeline").cell(Core(M.Leading)).cell(Core(M.Trailing));
  Out.row().cell("L1 cache").cell(Cache(M.Leading.L1)).cell(
      Cache(M.Trailing.L1));
  Out.row()
      .cell("Br. pred.")
      .cell(std::to_string(1 << M.Leading.GshareBits) +
            "-counter gshare, " + std::to_string(M.Leading.RasEntries) +
            "-entry RAS")
      .cell("same");
  Out.row().cell("L2 cache").cell("shared " + Cache(M.L2)).cell("shared");
  Out.row()
      .cell("Coherence")
      .cell(std::to_string(M.CoherenceHopCycles) + "-cycle minimum hop")
      .cell("same");
  Out.row()
      .cell("Memory")
      .cell(std::to_string(M.MemoryLatencyCycles) +
            "-cycle latency (after L2)")
      .cell("same");

  Out.print(std::cout, Opt.Csv);
  return 0;
}

//===- bench/Table4Experiment.cpp - Shared Table 4 sweep ------------------===//
//
// Part of the specctrl project (CGO 2005 reactive speculation reproduction).
//
//===----------------------------------------------------------------------===//

#include "Table4Experiment.h"

#include "core/ReactiveController.h"
#include "support/Table.h"

#include <algorithm>
#include <memory>
#include <ostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;

std::vector<Table4Variant>
bench::table4Variants(const ReactiveConfig &Base, bool NoOscillationLimit) {
  auto WithBaseLatency = [&Base](ReactiveConfig C) {
    C.OptLatency = Base.OptLatency;
    // Keep the scaled wait period except where the variant itself changes
    // it (frequent revisit = one order of magnitude below the baseline).
    C.WaitPeriod = C.WaitPeriod == ReactiveConfig().WaitPeriod
                       ? Base.WaitPeriod
                       : Base.WaitPeriod / 10;
    // Keep the sampling variant's 10% duty cycle but scale the window
    // with the compressed site lifetimes.
    if (C.EvictBySampling) {
      C.EvictSampleWindow = 2000;
      C.EvictSampleCount = 200;
    }
    return C;
  };

  std::vector<Table4Variant> Variants = {
      {"no revisit", WithBaseLatency(ReactiveConfig::noRevisit()), "35.8%",
       "0.007%"},
      {"lower eviction threshold",
       WithBaseLatency(ReactiveConfig::lowerEvictionThreshold()), "42.9%",
       "0.015%"},
      {"eviction by sampling",
       WithBaseLatency(ReactiveConfig::evictionBySampling()), "43.6%",
       "0.021%"},
      {"baseline", Base, "44.8%", "0.023%"},
      {"sampling in monitor",
       WithBaseLatency(ReactiveConfig::monitorSampling()), "44.8%",
       "0.025%"},
      {"more frequent revisit (100k)",
       WithBaseLatency(ReactiveConfig::frequentRevisit()), "46.1%",
       "0.033%"},
      {"no eviction", WithBaseLatency(ReactiveConfig::noEviction()), "53.9%",
       "1.979%"},
  };
  if (NoOscillationLimit) {
    ReactiveConfig C = Base;
    C.OscillationLimit = 0;
    Variants.push_back({"no oscillation limit", C, "-", "-"});
  }
  return Variants;
}

engine::ExperimentPlan
bench::table4Plan(const SuiteOptions &Opt,
                  const std::vector<Table4Variant> &Variants) {
  // One engine cell per (benchmark, configuration); every cell builds its
  // own controller from the captured config, so parallel execution is
  // bit-identical to serial -- across threads and processes alike.
  engine::ExperimentPlan Plan = suitePlan(Opt);
  for (const Table4Variant &V : Variants)
    Plan.addConfig(V.Name,
                   [Config = V.Config](const engine::CellContext &) {
                     return std::make_unique<ReactiveController>(Config);
                   });
  return Plan;
}

namespace {

struct Row {
  std::string Name;
  std::string PaperCorrect;
  std::string PaperIncorrect;
  double Correct = 0;
  double Incorrect = 0;
  uint64_t Requests = 0;
  uint64_t Suppressed = 0;
};

} // namespace

void bench::printTable4Report(std::ostream &OS,
                              const engine::RunReport &Report,
                              const std::vector<Table4Variant> &Variants,
                              size_t NumBenchmarks, bool Csv) {
  std::vector<Row> Rows;
  for (uint32_t V = 0; V < Variants.size(); ++V) {
    Row R;
    R.Name = Variants[V].Name;
    R.PaperCorrect = Variants[V].PaperCorrect;
    R.PaperIncorrect = Variants[V].PaperIncorrect;
    for (uint32_t B = 0; B < NumBenchmarks; ++B) {
      const ControlStats &S = Report.cell(B, 0, V).Stats;
      R.Correct += S.correctRate();
      R.Incorrect += S.incorrectRate();
      R.Requests += S.DeployRequests + S.RevokeRequests;
      R.Suppressed += S.SuppressedRequests;
    }
    R.Correct /= static_cast<double>(NumBenchmarks);
    R.Incorrect /= static_cast<double>(NumBenchmarks);
    Rows.push_back(R);
  }

  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const Row &A, const Row &B) {
                     return A.Correct < B.Correct;
                   });

  Table Out({"configuration", "correct", "incorrect", "requests",
             "suppressed"});
  for (const Row &R : Rows)
    Out.row()
        .cell(R.Name + (R.PaperCorrect[0] != '-'
                            ? " (" + R.PaperCorrect + "/" +
                                  R.PaperIncorrect + ")"
                            : ""))
        .cellPercent(R.Correct)
        .cellPercent(R.Incorrect, 4)
        .cell(R.Requests)
        .cell(R.Suppressed);

  Out.print(OS, Csv);
}

//===- bench/fig5_reactive_model.cpp - Figure 5 ---------------------------===//
//
// Regenerates Figure 5: the reactive control model against static
// self-training, per benchmark, for the baseline configuration and the
// Sec. 3.3 sensitivity variants (no eviction, no revisit, lower eviction
// threshold, eviction by sampling, monitor sampling, more frequent
// revisit), plus an optimization-latency sweep (the paper's headline
// latency-tolerance claim).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "profile/Pareto.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

namespace {

struct Variant {
  const char *Name;
  ReactiveConfig Config;
};

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Opts("fig5_reactive_model: Figure 5, reactive control vs "
                 "self-training and the sensitivity variants");
  addStandardOptions(Opts);
  Opts.addFlag("latency-sweep",
               "also run the 0 / 100k / 1M instruction latency points");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Figure 5",
              "reactive model vs self-training; sensitivity variants "
              "(rates are fractions of all dynamic branches)");

  const ReactiveConfig Base = scaledBaseline(Opts);
  auto WithBaseLatency = [&Base](ReactiveConfig C) {
    C.OptLatency = Base.OptLatency;
    // Keep the scaled wait period except where the variant itself changes
    // it (frequent revisit = one order of magnitude below the baseline).
    C.WaitPeriod = C.WaitPeriod == ReactiveConfig().WaitPeriod
                       ? Base.WaitPeriod
                       : Base.WaitPeriod / 10;
    // Keep the sampling variant's 10% duty cycle but scale the window
    // with the compressed site lifetimes.
    if (C.EvictBySampling) {
      C.EvictSampleWindow = 2000;
      C.EvictSampleCount = 200;
    }
    return C;
  };

  std::vector<Variant> Variants = {
      {"baseline", Base},
      {"no-eviction", WithBaseLatency(ReactiveConfig::noEviction())},
      {"no-revisit", WithBaseLatency(ReactiveConfig::noRevisit())},
      {"lower-evict-1k",
       WithBaseLatency(ReactiveConfig::lowerEvictionThreshold())},
      {"evict-sampling", WithBaseLatency(ReactiveConfig::evictionBySampling())},
      {"monitor-sampling", WithBaseLatency(ReactiveConfig::monitorSampling())},
      {"revisit-100k", WithBaseLatency(ReactiveConfig::frequentRevisit())},
  };
  if (Opts.getFlag("latency-sweep")) {
    static const char *LatencyNames[] = {"latency-0", "latency-100k",
                                         "latency-1M"};
    const uint64_t Latencies[] = {0, 100000, 1000000};
    for (unsigned I = 0; I < 3; ++I) {
      ReactiveConfig C = Base;
      C.OptLatency = Latencies[I];
      Variants.push_back({LatencyNames[I], C});
    }
  }

  Table Out({"bench", "config", "correct", "incorrect", "evictions",
             "requests"});

  for (const WorkloadSpec &Spec : selectedSuite(Opt)) {
    // Self-training reference point (the line's 99% knee).
    const profile::BranchProfile Self = collectProfile(Spec, Spec.refInput());
    const profile::SelectionResult Ref =
        profile::evaluateSelection(Self, Self, 0.99);
    Out.row()
        .cell(Spec.Name)
        .cell("self-training-99")
        .cellPercent(Ref.Correct)
        .cellPercent(Ref.Incorrect, 4)
        .cell("-")
        .cell("-");

    for (const Variant &V : Variants) {
      ReactiveController C(V.Config, V.Name);
      const ControlStats &S = runWorkload(C, Spec, Spec.refInput());
      Out.row()
          .cell(Spec.Name)
          .cell(V.Name)
          .cellPercent(S.correctRate())
          .cellPercent(S.incorrectRate(), 4)
          .cell(S.Evictions)
          .cell(S.DeployRequests + S.RevokeRequests);
    }
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

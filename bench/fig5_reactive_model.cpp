//===- bench/fig5_reactive_model.cpp - Figure 5 ---------------------------===//
//
// Regenerates Figure 5: the reactive control model against static
// self-training, per benchmark, for the baseline configuration and the
// Sec. 3.3 sensitivity variants (no eviction, no revisit, lower eviction
// threshold, eviction by sampling, monitor sampling, more frequent
// revisit), plus an optimization-latency sweep (the paper's headline
// latency-tolerance claim).
//
// All runs -- including the self-training reference, which is a
// profile-collecting cell -- execute as one ExperimentPlan on the
// parallel engine (--jobs workers, output independent of the value).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "core/StaticControllers.h"
#include "profile/Pareto.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

namespace {

struct Variant {
  const char *Name;
  ReactiveConfig Config;
};

constexpr const char *SelfTrainingName = "self-training-99";

/// A controller that never speculates: carrier for profile-collection
/// cells (the observer does the work).
std::unique_ptr<SpeculationController> makeNullController() {
  return std::make_unique<StaticSelectionController>(
      std::vector<bool>{}, std::vector<bool>{}, "none");
}

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Opts("fig5_reactive_model: Figure 5, reactive control vs "
                 "self-training and the sensitivity variants");
  addStandardOptions(Opts);
  Opts.addFlag("latency-sweep",
               "also run the 0 / 100k / 1M instruction latency points");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Figure 5",
              "reactive model vs self-training; sensitivity variants "
              "(rates are fractions of all dynamic branches)");

  const ReactiveConfig Base = scaledBaseline(Opts);
  auto WithBaseLatency = [&Base](ReactiveConfig C) {
    C.OptLatency = Base.OptLatency;
    // Keep the scaled wait period except where the variant itself changes
    // it (frequent revisit = one order of magnitude below the baseline).
    C.WaitPeriod = C.WaitPeriod == ReactiveConfig().WaitPeriod
                       ? Base.WaitPeriod
                       : Base.WaitPeriod / 10;
    // Keep the sampling variant's 10% duty cycle but scale the window
    // with the compressed site lifetimes.
    if (C.EvictBySampling) {
      C.EvictSampleWindow = 2000;
      C.EvictSampleCount = 200;
    }
    return C;
  };

  std::vector<Variant> Variants = {
      {"baseline", Base},
      {"no-eviction", WithBaseLatency(ReactiveConfig::noEviction())},
      {"no-revisit", WithBaseLatency(ReactiveConfig::noRevisit())},
      {"lower-evict-1k",
       WithBaseLatency(ReactiveConfig::lowerEvictionThreshold())},
      {"evict-sampling", WithBaseLatency(ReactiveConfig::evictionBySampling())},
      {"monitor-sampling", WithBaseLatency(ReactiveConfig::monitorSampling())},
      {"revisit-100k", WithBaseLatency(ReactiveConfig::frequentRevisit())},
  };
  if (Opts.getFlag("latency-sweep")) {
    static const char *LatencyNames[] = {"latency-0", "latency-100k",
                                         "latency-1M"};
    const uint64_t Latencies[] = {0, 100000, 1000000};
    for (unsigned I = 0; I < 3; ++I) {
      ReactiveConfig C = Base;
      C.OptLatency = Latencies[I];
      Variants.push_back({LatencyNames[I], C});
    }
  }

  // Grid: the self-training reference first (its cell collects the run's
  // profile through an observer; the paper's 99% knee is computed from it
  // after the run), then the reactive variants.
  engine::ExperimentPlan Plan = suitePlan(Opt);
  Plan.addConfig(SelfTrainingName, [](const engine::CellContext &) {
    return makeNullController();
  });
  for (const Variant &V : Variants)
    Plan.addConfig(V.Name, [V](const engine::CellContext &) {
      return std::make_unique<ReactiveController>(V.Config, V.Name);
    });
  Plan.setObserverFactory([](const engine::CellContext &Ctx)
                              -> std::unique_ptr<TraceObserver> {
    if (Ctx.ConfigName != SelfTrainingName)
      return nullptr;
    return std::make_unique<ProfileObserver>(Ctx.Spec.numSites());
  });

  const engine::RunReport Report = runSuite(Plan, Opt);
  if (!checkReport(Report))
    return 1;

  Table Out({"bench", "config", "correct", "incorrect", "evictions",
             "requests"});

  const std::vector<engine::BenchmarkAxis> &Benchmarks = Plan.benchmarks();
  for (uint32_t B = 0; B < Benchmarks.size(); ++B) {
    const std::string &Bench = Benchmarks[B].Spec.Name;

    // Self-training reference point (the line's 99% knee).
    const engine::CellResult &SelfCell = Report.cell(B, 0, 0);
    const auto &Self =
        static_cast<const ProfileObserver &>(*SelfCell.Observer).profile();
    const profile::SelectionResult Ref =
        profile::evaluateSelection(Self, Self, 0.99);
    Out.row()
        .cell(Bench)
        .cell(SelfTrainingName)
        .cellPercent(Ref.Correct)
        .cellPercent(Ref.Incorrect, 4)
        .cell("-")
        .cell("-");

    for (uint32_t V = 0; V < Variants.size(); ++V) {
      const ControlStats &S = Report.cell(B, 0, V + 1).Stats;
      Out.row()
          .cell(Bench)
          .cell(Variants[V].Name)
          .cellPercent(S.correctRate())
          .cellPercent(S.incorrectRate(), 4)
          .cell(S.Evictions)
          .cell(S.DeployRequests + S.RevokeRequests);
    }
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

//===- bench/fig2_opportunity.cpp - Figure 2 ------------------------------===//
//
// Regenerates Figure 2: the correct/incorrect speculation trade-off.
//
//  * "pareto"  series -- the self-training Pareto frontier, sampled at a
//    ladder of bias thresholds (the solid line);
//  * "self-99" -- the 99% threshold knee point (the filled circle);
//  * "offline" -- selection from a differing training input at the 99%
//    threshold (the triangles; Table 1's input pairs);
//  * "init-<N>" -- selection from the first N executions of each branch
//    (the crosses; N in 1k/10k/100k/300k/1M).
//
// Axes are fractions of the evaluation run's dynamic branches.
//
// There are no controllers here, only profile collection: each
// (benchmark, input) run is an engine cell whose observer streams the
// whole-run profile (and, for the evaluation input, the initial-behavior
// prefix statistics).  All series are computed analytically afterwards.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Driver.h"
#include "core/StaticControllers.h"
#include "profile/InitialBehavior.h"
#include "profile/Pareto.h"
#include "support/Table.h"

#include <iostream>
#include <memory>
#include <optional>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::profile;
using namespace specctrl::workload;

namespace {

/// Collects the whole-run profile and, for the evaluation input, the
/// initial-behavior prefix statistics, in one streaming pass.
class Fig2Observer final : public core::TraceObserver {
public:
  Fig2Observer(uint32_t NumSites, bool CollectInitial) : Profile(NumSites) {
    if (CollectInitial)
      Initial.emplace(InitialBehaviorProfile::paperWindows());
  }

  void onEvent(const BranchEvent &Event,
               const core::BranchVerdict &) override {
    Profile.addOutcome(Event.Site, Event.Taken);
    if (Initial)
      Initial->addOutcome(Event.Site, Event.Taken);
  }

  BranchProfile Profile;
  std::optional<InitialBehaviorProfile> Initial;
};

} // namespace

int main(int Argc, char **Argv) {
  OptionSet Opts("fig2_opportunity: Figure 2, the opportunity for software "
                 "speculation and the fragility of non-reactive selection");
  addStandardOptions(Opts);
  Opts.addDouble("threshold", 0.99, "selection bias threshold");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);
  const double Threshold = Opts.getDouble("threshold");

  printBanner("Figure 2",
              "correct vs incorrect speculation: self-training frontier, "
              "99% knee, differing-input profile, initial-behavior windows");

  // One profile-collection cell per (benchmark, input): ref first, then
  // the differing training input.
  engine::ExperimentPlan Plan;
  Plan.setBaseSeed(Opt.Seed);
  Plan.setTraceArena(makeArena(Opt));
  for (WorkloadSpec &Spec : selectedSuite(Opt)) {
    std::vector<InputConfig> Inputs = {Spec.refInput(), Spec.trainInput()};
    Plan.addBenchmark(std::move(Spec), std::move(Inputs));
  }
  Plan.addConfig("profile", [](const engine::CellContext &) {
    return std::make_unique<core::StaticSelectionController>(
        std::vector<bool>{}, std::vector<bool>{}, "none");
  });
  Plan.setObserverFactory(
      [](const engine::CellContext &Ctx) -> std::unique_ptr<core::TraceObserver> {
        return std::make_unique<Fig2Observer>(
            Ctx.Spec.numSites(), /*CollectInitial=*/Ctx.Input.Name == "ref");
      });

  const engine::RunReport Report = runSuite(Plan, Opt);
  if (!checkReport(Report))
    return 1;

  Table Out({"bench", "series", "param", "correct", "incorrect",
             "selected sites"});

  const double Ladder[] = {0.9999, 0.999, 0.998, 0.995, 0.99, 0.98,
                           0.95,   0.90,  0.80,  0.70,  0.60, 0.51};

  const std::vector<engine::BenchmarkAxis> &Benchmarks = Plan.benchmarks();
  for (uint32_t B = 0; B < Benchmarks.size(); ++B) {
    const std::string &Bench = Benchmarks[B].Spec.Name;
    const auto &Ref =
        static_cast<const Fig2Observer &>(*Report.cell(B, 0, 0).Observer);
    const auto &Train =
        static_cast<const Fig2Observer &>(*Report.cell(B, 1, 0).Observer);
    const BranchProfile &RefProfile = Ref.Profile;
    const InitialBehaviorProfile &Initial = *Ref.Initial;

    for (double T : Ladder) {
      const SelectionResult R = evaluateSelection(RefProfile, RefProfile, T);
      Out.row()
          .cell(Bench)
          .cell("pareto")
          .cell(T, 4)
          .cellPercent(R.Correct)
          .cellPercent(R.Incorrect, 4)
          .cell(R.SelectedSites);
    }

    const SelectionResult Knee =
        evaluateSelection(RefProfile, RefProfile, Threshold);
    Out.row()
        .cell(Bench)
        .cell("self-99")
        .cell(Threshold, 2)
        .cellPercent(Knee.Correct)
        .cellPercent(Knee.Incorrect, 4)
        .cell(Knee.SelectedSites);

    const SelectionResult Offline =
        evaluateSelection(Train.Profile, RefProfile, Threshold);
    Out.row()
        .cell(Bench)
        .cell("offline")
        .cell(Threshold, 2)
        .cellPercent(Offline.Correct)
        .cellPercent(Offline.Incorrect, 4)
        .cell(Offline.SelectedSites);

    for (unsigned W = 0; W < Initial.windows().size(); ++W) {
      const SelectionResult R = Initial.evaluate(W, Threshold);
      Out.row()
          .cell(Bench)
          .cell("init-" + std::to_string(Initial.windows()[W]))
          .cell(Threshold, 2)
          .cellPercent(R.Correct)
          .cellPercent(R.Incorrect, 4)
          .cell(R.SelectedSites);
    }
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

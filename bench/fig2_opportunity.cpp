//===- bench/fig2_opportunity.cpp - Figure 2 ------------------------------===//
//
// Regenerates Figure 2: the correct/incorrect speculation trade-off.
//
//  * "pareto"  series -- the self-training Pareto frontier, sampled at a
//    ladder of bias thresholds (the solid line);
//  * "self-99" -- the 99% threshold knee point (the filled circle);
//  * "offline" -- selection from a differing training input at the 99%
//    threshold (the triangles; Table 1's input pairs);
//  * "init-<N>" -- selection from the first N executions of each branch
//    (the crosses; N in 1k/10k/100k/300k/1M).
//
// Axes are fractions of the evaluation run's dynamic branches.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/InitialBehavior.h"
#include "profile/Pareto.h"
#include "support/Table.h"

#include <iostream>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::profile;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("fig2_opportunity: Figure 2, the opportunity for software "
                 "speculation and the fragility of non-reactive selection");
  addStandardOptions(Opts);
  Opts.addDouble("threshold", 0.99, "selection bias threshold");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);
  const double Threshold = Opts.getDouble("threshold");

  printBanner("Figure 2",
              "correct vs incorrect speculation: self-training frontier, "
              "99% knee, differing-input profile, initial-behavior windows");

  Table Out({"bench", "series", "param", "correct", "incorrect",
             "selected sites"});

  const double Ladder[] = {0.9999, 0.999, 0.998, 0.995, 0.99, 0.98,
                           0.95,   0.90,  0.80,  0.70,  0.60, 0.51};

  for (const WorkloadSpec &Spec : selectedSuite(Opt)) {
    const InputConfig Ref = Spec.refInput();

    // One streaming pass over the evaluation input collects both the
    // whole-run profile and the initial-behavior prefix statistics.
    BranchProfile RefProfile(Spec.numSites());
    InitialBehaviorProfile Initial(InitialBehaviorProfile::paperWindows());
    {
      TraceGenerator Gen(Spec, Ref);
      BranchEvent E;
      while (Gen.next(E)) {
        RefProfile.addOutcome(E.Site, E.Taken);
        Initial.addOutcome(E.Site, E.Taken);
      }
    }

    for (double T : Ladder) {
      const SelectionResult R = evaluateSelection(RefProfile, RefProfile, T);
      Out.row()
          .cell(Spec.Name)
          .cell("pareto")
          .cell(T, 4)
          .cellPercent(R.Correct)
          .cellPercent(R.Incorrect, 4)
          .cell(R.SelectedSites);
    }

    const SelectionResult Knee =
        evaluateSelection(RefProfile, RefProfile, Threshold);
    Out.row()
        .cell(Spec.Name)
        .cell("self-99")
        .cell(Threshold, 2)
        .cellPercent(Knee.Correct)
        .cellPercent(Knee.Incorrect, 4)
        .cell(Knee.SelectedSites);

    const BranchProfile TrainProfile =
        collectProfile(Spec, Spec.trainInput());
    const SelectionResult Offline =
        evaluateSelection(TrainProfile, RefProfile, Threshold);
    Out.row()
        .cell(Spec.Name)
        .cell("offline")
        .cell(Threshold, 2)
        .cellPercent(Offline.Correct)
        .cellPercent(Offline.Incorrect, 4)
        .cell(Offline.SelectedSites);

    for (unsigned W = 0; W < Initial.windows().size(); ++W) {
      const SelectionResult R = Initial.evaluate(W, Threshold);
      Out.row()
          .cell(Spec.Name)
          .cell("init-" + std::to_string(Initial.windows()[W]))
          .cell(Threshold, 2)
          .cellPercent(R.Correct)
          .cellPercent(R.Incorrect, 4)
          .cell(R.SelectedSites);
    }
  }

  Out.print(std::cout, Opt.Csv);
  return 0;
}

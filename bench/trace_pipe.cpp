//===- bench/trace_pipe.cpp - Trace-pipeline throughput microbenches ------===//
//
// google-benchmark microbenches for the batched trace-event pipeline: the
// same (generation or replay) -> controller -> observer runs driven per
// event (BatchEvents = 1, the reference path) and in chunks (the default
// path), reported as events/sec.  The batched path must beat the
// per-event path by >= 1.5x on at least one configuration (the
// dispatch-bound replay and static-selection pipelines are the clearest
// wins); the equivalence property tests guarantee the two paths produce
// bit-identical results, so the speedup is free.
//
// Every benchmark takes the chunk size as its argument: 1 = per-event.
//
//===----------------------------------------------------------------------===//

#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "core/StaticControllers.h"
#include "engine/ExperimentRunner.h"
#include "profile/BranchProfile.h"
#include "workload/SpecSuite.h"
#include "workload/TraceArena.h"
#include "workload/TraceFile.h"
#include "workload/TraceGenerator.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <string>

using namespace specctrl;

namespace {

const workload::SuiteScale PipeScale{6.0e4, 0.1};

const workload::WorkloadSpec &pipeSpec() {
  static const workload::WorkloadSpec Spec =
      workload::makeBenchmark("bzip2", PipeScale);
  return Spec;
}

/// The whole-run profile of the pipe workload (for self-trained static
/// selections), computed once.
const profile::BranchProfile &pipeProfile() {
  static const profile::BranchProfile Profile = [] {
    profile::BranchProfile P(pipeSpec().numSites());
    workload::TraceGenerator Gen(pipeSpec(), pipeSpec().refInput());
    workload::BranchEvent E;
    while (Gen.next(E))
      P.addOutcome(E.Site, E.Taken);
    return P;
  }();
  return Profile;
}

/// The pipe workload recorded once in each trace format.
const std::string &recordedTrace(unsigned Version) {
  static const std::string V1 = [] {
    std::ostringstream OS;
    workload::TraceGenerator Gen(pipeSpec(), pipeSpec().refInput());
    workload::writeTrace(OS, Gen);
    return OS.str();
  }();
  static const std::string V2 = [] {
    std::ostringstream OS;
    workload::TraceGenerator Gen(pipeSpec(), pipeSpec().refInput());
    workload::writeTraceV2(OS, Gen);
    return OS.str();
  }();
  return Version == 1 ? V1 : V2;
}

core::ReactiveConfig scaledReactive() {
  core::ReactiveConfig C = core::ReactiveConfig::baseline();
  C.OptLatency = 10000;
  C.WaitPeriod = 50000;
  return C;
}

void reportRun(benchmark::State &State, const core::TraceRunMetrics &M) {
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(M.Events));
  State.counters["batches"] =
      benchmark::Counter(static_cast<double>(M.Batches));
}

/// Generation -> reactive controller, chunk size = Arg.
void BM_TracePipe_Reactive(benchmark::State &State) {
  const size_t Batch = static_cast<size_t>(State.range(0));
  core::TraceRunMetrics Metrics;
  for (auto _ : State) {
    core::ReactiveController C(scaledReactive());
    workload::TraceGenerator Gen(pipeSpec(), pipeSpec().refInput());
    Metrics = {};
    core::runTrace(C, Gen, nullptr, Batch, &Metrics);
    benchmark::DoNotOptimize(C.stats().CorrectSpecs);
  }
  reportRun(State, Metrics);
}
BENCHMARK(BM_TracePipe_Reactive)->Arg(1)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// Generation -> self-trained static selection, chunk size = Arg.
void BM_TracePipe_Static(benchmark::State &State) {
  const size_t Batch = static_cast<size_t>(State.range(0));
  core::TraceRunMetrics Metrics;
  for (auto _ : State) {
    core::StaticSelectionController C(pipeProfile(), 0.99);
    workload::TraceGenerator Gen(pipeSpec(), pipeSpec().refInput());
    Metrics = {};
    core::runTrace(C, Gen, nullptr, Batch, &Metrics);
    benchmark::DoNotOptimize(C.stats().CorrectSpecs);
  }
  reportRun(State, Metrics);
}
BENCHMARK(BM_TracePipe_Static)->Arg(1)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// Replay (recorded trace -> controller) with a profile observer, chunk
/// size = Arg; Version selects the v1 or v2 on-disk format.
template <unsigned Version>
void BM_TracePipe_Replay(benchmark::State &State) {
  const size_t Batch = static_cast<size_t>(State.range(0));
  const std::string &Bytes = recordedTrace(Version);
  core::TraceRunMetrics Metrics;
  for (auto _ : State) {
    std::istringstream IS(Bytes);
    workload::TraceFileReader Reader(IS);
    core::StaticSelectionController C(pipeProfile(), 0.99);
    core::ProfileObserver Observer(Reader.numSites());
    Metrics = {};
    core::runTrace(C, Reader, &Observer, Batch, &Metrics);
    benchmark::DoNotOptimize(Observer.profile().totalExecutions());
  }
  State.counters["trace_bytes"] =
      benchmark::Counter(static_cast<double>(Bytes.size()));
  reportRun(State, Metrics);
}
BENCHMARK(BM_TracePipe_Replay<1>)->Arg(1)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TracePipe_Replay<2>)->Arg(1)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// A table4-shaped sweep (one workload, a ladder of reactive configs)
/// through the experiment engine, with and without the trace arena:
/// synthesize-once-and-replay vs regenerate-per-cell.  Arguments are
/// (UseArena, Jobs); each iteration builds a fresh arena, so the reported
/// time includes the one-time materialization cost the sweep amortizes.
void BM_TraceArena(benchmark::State &State) {
  const bool UseArena = State.range(0) != 0;
  const unsigned Jobs = static_cast<unsigned>(State.range(1));
  const double Ladder[] = {0.98, 0.99, 0.995, 0.998, 0.9995, 0.9999};

  engine::ExperimentPlan Plan;
  Plan.addBenchmark(pipeSpec());
  for (double T : Ladder)
    Plan.addConfig("t" + std::to_string(T),
                   [T](const engine::CellContext &) {
                     core::ReactiveConfig C = scaledReactive();
                     C.SelectThreshold = T;
                     return std::make_unique<core::ReactiveController>(C);
                   });

  engine::RunOptions Run;
  Run.Jobs = Jobs;
  uint64_t Events = 0;
  workload::TraceArenaStats Arena;
  for (auto _ : State) {
    if (UseArena)
      Plan.setTraceArena(std::make_shared<workload::TraceArena>());
    const engine::RunReport Report = engine::runPlan(Plan, Run);
    Events = Report.totalEvents();
    if (UseArena) {
      Arena = Plan.traceArena()->stats();
      Plan.setTraceArena(nullptr);
    }
    benchmark::DoNotOptimize(Events);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(Events));
  if (UseArena) {
    State.counters["materializations"] =
        benchmark::Counter(static_cast<double>(Arena.Materializations));
    State.counters["resident_bytes"] =
        benchmark::Counter(static_cast<double>(Arena.ResidentBytes));
  }
}
BENCHMARK(BM_TraceArena)
    ->ArgNames({"arena", "jobs"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

/// Recording throughput of each format (generation included, identical in
/// both, so the delta is pure encode cost; counters report bytes/event).
template <unsigned Version>
void BM_TracePipe_Record(benchmark::State &State) {
  uint64_t Events = 0;
  size_t Bytes = 0;
  for (auto _ : State) {
    std::ostringstream OS;
    workload::TraceGenerator Gen(pipeSpec(), pipeSpec().refInput());
    Events = Version == 1 ? workload::writeTrace(OS, Gen)
                          : workload::writeTraceV2(OS, Gen);
    Bytes = OS.str().size();
    benchmark::DoNotOptimize(Events);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(Events));
  State.counters["bytes_per_event"] = benchmark::Counter(
      Events ? static_cast<double>(Bytes) / static_cast<double>(Events)
             : 0.0);
}
BENCHMARK(BM_TracePipe_Record<1>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TracePipe_Record<2>)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

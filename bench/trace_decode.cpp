//===- bench/trace_decode.cpp - Trace decode + sweep microbenches ---------===//
//
// google-benchmark microbenches for the SCT2 decode tiers and the sweep
// executors:
//
//  * BM_Decode_* -- per-block payload decode over a recorded trace: the
//    checked decoder (validation on every event), the scalar trusted
//    decoder (the pre-SWAR baseline), and the SWAR trusted decoder (four
//    events per 8-byte load).  The SWAR path must beat the scalar path by
//    >= 1.5x events/sec; the equivalence tests pin bit-identical output,
//    so the speedup is free.
//  * BM_Replay_* -- whole-trace replay throughput of the resident tier
//    (TraceFileReader over an ifstream) vs the zero-copy mmap tier
//    (MmapReplaySource over a page-aligned file).
//  * BM_Sweep -- a table4-shaped plan through the in-process thread-pool
//    executor vs the forked work-stealing process pool, at 1 and 4
//    workers (the BENCH_sweep.json trajectory point).
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentRunner.h"
#include "engine/ProcessPool.h"
#include "core/ReactiveController.h"
#include "workload/MmapTraceStore.h"
#include "workload/SpecSuite.h"
#include "workload/TraceFile.h"
#include "workload/TraceGenerator.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace specctrl;

namespace {

const workload::SuiteScale DecodeScale{6.0e4, 0.1};

const workload::WorkloadSpec &decodeSpec() {
  static const workload::WorkloadSpec Spec =
      workload::makeBenchmark("bzip2", DecodeScale);
  return Spec;
}

/// The decode workload recorded once in the packed v2 layout.
const std::string &recordedV2() {
  static const std::string Bytes = [] {
    std::ostringstream OS;
    workload::TraceGenerator Gen(decodeSpec(), decodeSpec().refInput());
    workload::writeTraceV2(OS, Gen);
    return OS.str();
  }();
  return Bytes;
}

struct BlockRef {
  const uint8_t *Payload = nullptr;
  size_t PayloadBytes = 0;
  uint32_t Events = 0;
};

uint32_t loadLE32(const uint8_t *P) {
  uint32_t V;
  std::memcpy(&V, P, sizeof(V));
  return V;
}

/// Structural walk of the recorded image: (payload, bytes, count) per
/// block, pad frames skipped -- the same walk MappedTrace::open performs.
const std::vector<BlockRef> &recordedBlocks() {
  static const std::vector<BlockRef> Blocks = [] {
    const std::string &Bytes = recordedV2();
    const uint8_t *Base = reinterpret_cast<const uint8_t *>(Bytes.data());
    std::vector<BlockRef> Out;
    size_t Off = workload::TraceV2HeaderBytes;
    while (Off + workload::TraceV2FrameBytes <= Bytes.size()) {
      const uint32_t Count = loadLE32(Base + Off);
      const uint32_t PayloadBytes = loadLE32(Base + Off + 4);
      Off += workload::TraceV2FrameBytes;
      if (Count != 0)
        Out.push_back({Base + Off, PayloadBytes, Count});
      Off += PayloadBytes;
    }
    return Out;
  }();
  return Blocks;
}

uint64_t recordedEvents() {
  uint64_t Total = 0;
  for (const BlockRef &B : recordedBlocks())
    Total += B.Events;
  return Total;
}

void reportDecode(benchmark::State &State, uint64_t Events) {
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(Events));
  State.counters["blocks"] =
      benchmark::Counter(static_cast<double>(recordedBlocks().size()));
}

/// Fully checked decode (per-event validation): the first-touch path.
void BM_Decode_Checked(benchmark::State &State) {
  const std::vector<BlockRef> &Blocks = recordedBlocks();
  const uint32_t NumSites = decodeSpec().numSites();
  std::vector<workload::BranchEvent> Buf(workload::TraceV2BlockEvents);
  for (auto _ : State) {
    uint64_t NextIndex = 0, InstRet = 0;
    for (const BlockRef &B : Blocks)
      if (!workload::decodeTraceBlockPayload(B.Payload, B.PayloadBytes,
                                             B.Events, NumSites, NextIndex,
                                             InstRet, Buf.data()))
        State.SkipWithError("checked decode rejected a block");
    benchmark::DoNotOptimize(Buf.data());
    benchmark::DoNotOptimize(InstRet);
  }
  reportDecode(State, recordedEvents());
}
BENCHMARK(BM_Decode_Checked)->Unit(benchmark::kMillisecond);

/// Trusted scalar decode: the pre-SWAR baseline, one event per iteration.
void BM_Decode_TrustedScalar(benchmark::State &State) {
  const std::vector<BlockRef> &Blocks = recordedBlocks();
  std::vector<workload::BranchEvent> Buf(workload::TraceV2BlockEvents);
  for (auto _ : State) {
    uint64_t NextIndex = 0, InstRet = 0;
    for (const BlockRef &B : Blocks)
      workload::decodeTraceBlockPayloadTrustedScalar(
          B.Payload, B.PayloadBytes, B.Events, NextIndex, InstRet, Buf.data());
    benchmark::DoNotOptimize(Buf.data());
    benchmark::DoNotOptimize(InstRet);
  }
  reportDecode(State, recordedEvents());
}
BENCHMARK(BM_Decode_TrustedScalar)->Unit(benchmark::kMillisecond);

/// Trusted SWAR decode: four events per 8-byte load on the varint fast
/// path.  Must be >= 1.5x BM_Decode_TrustedScalar events/sec.
void BM_Decode_TrustedSWAR(benchmark::State &State) {
  const std::vector<BlockRef> &Blocks = recordedBlocks();
  std::vector<workload::BranchEvent> Buf(workload::TraceV2BlockEvents);
  for (auto _ : State) {
    uint64_t NextIndex = 0, InstRet = 0;
    for (const BlockRef &B : Blocks)
      workload::decodeTraceBlockPayloadTrusted(
          B.Payload, B.PayloadBytes, B.Events, NextIndex, InstRet, Buf.data());
    benchmark::DoNotOptimize(Buf.data());
    benchmark::DoNotOptimize(InstRet);
  }
  reportDecode(State, recordedEvents());
}
BENCHMARK(BM_Decode_TrustedSWAR)->Unit(benchmark::kMillisecond);

/// The decode workload recorded once to disk in the page-aligned layout,
/// removed at process exit.
class AlignedTraceFile {
public:
  AlignedTraceFile() {
    Path = (std::filesystem::temp_directory_path() /
            ("specctrl-bench-decode-" + std::to_string(::getpid()) + ".sct2"))
               .string();
    std::ofstream OS(Path, std::ios::binary);
    workload::TraceGenerator Gen(decodeSpec(), decodeSpec().refInput());
    workload::writeTraceV2(OS, Gen, workload::TraceV2BlockEvents,
                           workload::TraceV2AlignBytes);
  }
  ~AlignedTraceFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

const std::string &alignedTracePath() {
  static const AlignedTraceFile File;
  return File.path();
}

/// Whole-trace replay through the resident tier: ifstream ->
/// TraceFileReader (read + checksum + checked decode every pass).
void BM_Replay_Resident(benchmark::State &State) {
  const std::string &Path = alignedTracePath();
  std::vector<workload::BranchEvent> Buf(workload::TraceV2BlockEvents);
  uint64_t Events = 0;
  for (auto _ : State) {
    std::ifstream IS(Path, std::ios::binary);
    workload::TraceFileReader Reader(IS);
    if (!Reader.valid())
      State.SkipWithError("trace file invalid");
    Events = 0;
    size_t N;
    while ((N = Reader.nextBatch(Buf)) != 0)
      Events += N;
    benchmark::DoNotOptimize(Events);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(Events));
}
BENCHMARK(BM_Replay_Resident)->Unit(benchmark::kMillisecond);

/// Whole-trace replay through the zero-copy mmap tier: blocks decode in
/// place from the shared mapping; after the first pass verifies the
/// bitmap, every pass runs the trusted SWAR path.
void BM_Replay_Mmap(benchmark::State &State) {
  const std::string &Path = alignedTracePath();
  std::vector<workload::BranchEvent> Buf(workload::TraceV2BlockEvents);
  uint64_t Events = 0;
  for (auto _ : State) {
    std::string Error;
    std::unique_ptr<workload::MmapReplaySource> Cursor =
        workload::MmapTraceStore::global().openCursor(Path, &Error);
    if (!Cursor)
      State.SkipWithError(Error.c_str());
    Events = 0;
    size_t N;
    while ((N = Cursor->nextBatch(Buf)) != 0)
      Events += N;
    if (Cursor->failed())
      State.SkipWithError(Cursor->error().c_str());
    benchmark::DoNotOptimize(Events);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(Events));
  std::string Error;
  if (std::shared_ptr<const workload::MappedTrace> Trace =
          workload::MmapTraceStore::global().open(Path, &Error))
    State.counters["mapped_bytes"] =
        benchmark::Counter(static_cast<double>(Trace->bytes()));
}
BENCHMARK(BM_Replay_Mmap)->Unit(benchmark::kMillisecond);

/// A table4-shaped sweep (two workloads x a reactive-config ladder)
/// through the in-process thread pool (procs=0) vs the forked
/// work-stealing process pool (procs=1).  The process pool adds fork +
/// fragment-serialization overhead per run but isolates cells and shares
/// the page cache; both produce bit-identical reports (pinned by
/// ProcessPoolTest), so this measures pure executor overhead/scaling.
void BM_Sweep(benchmark::State &State) {
  const bool UseProcs = State.range(0) != 0;
  const unsigned Workers = static_cast<unsigned>(State.range(1));

  engine::ExperimentPlan Plan;
  Plan.addBenchmark(workload::makeBenchmark("bzip2", DecodeScale));
  Plan.addBenchmark(workload::makeBenchmark("bzip2", DecodeScale));
  const double Ladder[] = {0.98, 0.99, 0.995, 0.998};
  for (double T : Ladder)
    Plan.addConfig("t" + std::to_string(T),
                   [T](const engine::CellContext &) {
                     core::ReactiveConfig C = core::ReactiveConfig::baseline();
                     C.OptLatency = 10000;
                     C.WaitPeriod = 50000;
                     C.SelectThreshold = T;
                     return std::make_unique<core::ReactiveController>(C);
                   });

  uint64_t Events = 0;
  for (auto _ : State) {
    engine::RunReport Report;
    if (UseProcs) {
      engine::ProcessRunOptions Options;
      Options.Procs = Workers;
      Report = engine::runPlanProcesses(Plan, Options);
    } else {
      Report = engine::runPlan(Plan, {.Jobs = Workers});
    }
    if (Report.failedCells() != 0)
      State.SkipWithError("sweep cells failed");
    Events = Report.totalEvents();
    benchmark::DoNotOptimize(Events);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(Events));
}
BENCHMARK(BM_Sweep)
    ->ArgNames({"procs", "workers"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->UseRealTime() // the workers' time, not the coordinating parent's
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

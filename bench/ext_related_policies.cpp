//===- bench/ext_related_policies.cpp - Sec. 5's predictions, tested ------===//
//
// The paper's related-work section makes two testable comparative claims:
//
//  1. Dynamo's preemptive fragment-cache flushing (no per-site feedback)
//     "will likely perform somewhere between closed-loop and open-loop
//     policies";
//  2. hardware speculation's per-instance saturating counters are the
//     fine-grain adaptivity reference that software speculation trades
//     away for code transformations.
//
// This experiment runs both against the paper's model on the full suite.
// Expected shape: open-loop <= dynamo-flush <= closed-loop on
// misspeculation control, and the hardware counter reference showing high
// coverage with instance-granular misspeculation (cheap there, ruinous
// for software speculation).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AlternativeControllers.h"
#include "core/Driver.h"
#include "core/ReactiveController.h"
#include "support/Table.h"

#include <iostream>
#include <memory>

using namespace specctrl;
using namespace specctrl::bench;
using namespace specctrl::core;
using namespace specctrl::workload;

int main(int Argc, char **Argv) {
  OptionSet Opts("ext_related_policies: Dynamo-style flushing and "
                 "hardware-style counters vs the paper's model (Sec. 5)");
  addStandardOptions(Opts);
  Opts.addInt("flush-interval", 25000000,
              "Dynamo flush interval in dynamic instructions");
  if (!Opts.parse(Argc, Argv))
    return Opts.wasError() ? 1 : 0;
  const SuiteOptions Opt = readSuiteOptions(Opts);

  printBanner("Extension: related-work policies",
              "suite-average rates: open loop <= dynamo-flush <= closed "
              "loop (the paper's Sec. 5 prediction), plus the hardware "
              "per-instance reference");

  const ReactiveConfig Base = scaledBaseline(Opts);
  ReactiveConfig Open = Base;
  Open.EnableEviction = false;
  Open.EnableRevisit = false;
  const uint64_t FlushInterval =
      static_cast<uint64_t>(Opts.getInt("flush-interval"));

  struct Row {
    const char *Name;
    double Correct = 0;
    double Incorrect = 0;
    uint64_t Requests = 0;
  } Rows[] = {{"open loop (one-shot)"},
              {"dynamo-flush"},
              {"closed loop (paper model)"},
              {"hardware 2-bit (per-instance reference)"}};

  const std::vector<WorkloadSpec> Suite = selectedSuite(Opt);
  for (const WorkloadSpec &Spec : Suite) {
    std::unique_ptr<SpeculationController> Policies[4];
    Policies[0] = std::make_unique<ReactiveController>(Open, "open");
    Policies[1] =
        std::make_unique<DynamoFlushController>(Base, FlushInterval);
    Policies[2] = std::make_unique<ReactiveController>(Base, "closed");
    Policies[3] = std::make_unique<HardwareCounterController>();
    for (int P = 0; P < 4; ++P) {
      const ControlStats &S =
          runWorkload(*Policies[P], Spec, Spec.refInput());
      Rows[P].Correct += S.correctRate();
      Rows[P].Incorrect += S.incorrectRate();
      Rows[P].Requests += S.DeployRequests + S.RevokeRequests;
    }
  }

  Table Out({"policy", "correct", "incorrect", "code-change requests"});
  for (Row &R : Rows)
    Out.row()
        .cell(R.Name)
        .cellPercent(R.Correct / Suite.size())
        .cellPercent(R.Incorrect / Suite.size(), 4)
        .cell(R.Requests);
  Out.print(std::cout, Opt.Csv);

  std::cout << "\n(the hardware row's misspeculations cost ~a pipeline "
               "refill each; for software\nspeculation the same rate "
               "would cost hundreds of cycles per instance -- Sec. 1's\n"
               "contrast between the two speculation classes)\n";
  return 0;
}
